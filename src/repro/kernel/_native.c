/* The compiled join backend: C twins of the repro.kernel.joins walkers.
 *
 * This extension operates on the *same* Python data structures the pure
 * python walkers use — the KernelState's inverted index (a dict mapping
 * (column, value-id) 2-tuples to lists of int-row tuples), its row set
 * and dense scan list, and the caller's register list — so a process
 * can switch backends at any point without rebuilding state, and the
 * differential suites can hold both backends to identical semantics on
 * shared instances.  The speedup comes from evaluating the step
 * programs without interpreter dispatch: registers live in a C array
 * for the duration of a walk (written back to the Python list only when
 * a caller must read a witness out of them), step components are packed
 * once per cached plan into flat int arrays (pack_steps, held by the
 * side cache in repro.kernel.joins), and the probe/bind/check candidate
 * loop runs as straight C.
 *
 * Semantics contract (enforced by the parametrized differential
 * suites): every walker here mirrors its python twin in
 * repro.kernel.joins line for line — smallest-bucket probe selection,
 * single-probe no-verify fast path, all-bound membership fast path,
 * bind-then-check order, dedup on the first n_universal registers, the
 * violation walk's conclusion probe, and the retraction walk's
 * image-shrinks switch to pure existence.  Any change to the step
 * semantics must land in both backends (see the NOTE in joins.py).
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

/* ------------------------------------------------------------------ */
/* Packed step programs                                               */
/* ------------------------------------------------------------------ */

typedef struct {
    int n_probes;        /* (column, slot) pairs, already bound        */
    int n_verify;        /* == n_probes when n_probes > 1, else 0      */
    int n_binds;         /* first occurrences: write regs[slot]        */
    int n_checks;        /* repeats within the atom: compare           */
    int membership;      /* all probes: one set-membership test        */
    long *probe_cols;
    long *probe_slots;
    long *bind_cols;
    long *bind_slots;
    long *check_cols;
    long *check_slots;
} NStep;

typedef struct {
    int n_steps;
    NStep *steps;
    long *block;         /* one allocation backing every int array     */
} NSteps;

static const char *STEPS_CAPSULE_NAME = "repro.kernel._native.steps";

static void
steps_capsule_free(PyObject *capsule)
{
    NSteps *ns = (NSteps *)PyCapsule_GetPointer(capsule, STEPS_CAPSULE_NAME);
    if (ns != NULL) {
        PyMem_Free(ns->block);
        PyMem_Free(ns->steps);
        PyMem_Free(ns);
    }
}

/* Copy one ((col, slot), ...) tuple into the packed block. */
static int
pack_pairs(PyObject *pairs, long *cols, long *slots, Py_ssize_t n)
{
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *pair = PySequence_GetItem(pairs, i);
        if (pair == NULL)
            return -1;
        PyObject *col = PySequence_GetItem(pair, 0);
        PyObject *slot = PySequence_GetItem(pair, 1);
        Py_DECREF(pair);
        if (col == NULL || slot == NULL) {
            Py_XDECREF(col);
            Py_XDECREF(slot);
            return -1;
        }
        cols[i] = PyLong_AsLong(col);
        slots[i] = PyLong_AsLong(slot);
        Py_DECREF(col);
        Py_DECREF(slot);
        if (PyErr_Occurred())
            return -1;
    }
    return 0;
}

/* pack_steps(spec) -> capsule
 *
 * spec is a sequence of (probes, binds, checks) triples, each component
 * a tuple of (column, slot) int pairs — exactly the AtomStep fields.
 * The derived fast-path fields (membership, verify) are recomputed here
 * under the same rules as AtomStep.__init__.
 */
static PyObject *
native_pack_steps(PyObject *self, PyObject *spec)
{
    PyObject *seq = PySequence_Fast(spec, "pack_steps expects a sequence");
    if (seq == NULL)
        return NULL;
    Py_ssize_t n_steps = PySequence_Fast_GET_SIZE(seq);

    NSteps *ns = PyMem_Malloc(sizeof(NSteps));
    NStep *steps = PyMem_Calloc((size_t)(n_steps ? n_steps : 1), sizeof(NStep));
    if (ns == NULL || steps == NULL) {
        PyMem_Free(ns);
        PyMem_Free(steps);
        Py_DECREF(seq);
        return PyErr_NoMemory();
    }
    ns->n_steps = (int)n_steps;
    ns->steps = steps;
    ns->block = NULL;

    /* First pass: count ints so one block holds every array. */
    Py_ssize_t total = 0;
    for (Py_ssize_t i = 0; i < n_steps; i++) {
        PyObject *triple = PySequence_Fast_GET_ITEM(seq, i);
        for (int part = 0; part < 3; part++) {
            PyObject *pairs = PySequence_GetItem(triple, part);
            if (pairs == NULL)
                goto fail;
            Py_ssize_t n = PySequence_Size(pairs);
            Py_DECREF(pairs);
            if (n < 0)
                goto fail;
            total += 2 * n;
        }
    }
    ns->block = PyMem_Malloc((size_t)(total ? total : 1) * sizeof(long));
    if (ns->block == NULL) {
        PyErr_NoMemory();
        goto fail;
    }

    long *cursor = ns->block;
    for (Py_ssize_t i = 0; i < n_steps; i++) {
        PyObject *triple = PySequence_Fast_GET_ITEM(seq, i);
        NStep *st = &steps[i];
        PyObject *probes = PySequence_GetItem(triple, 0);
        PyObject *binds = PySequence_GetItem(triple, 1);
        PyObject *checks = PySequence_GetItem(triple, 2);
        if (probes == NULL || binds == NULL || checks == NULL) {
            Py_XDECREF(probes);
            Py_XDECREF(binds);
            Py_XDECREF(checks);
            goto fail;
        }
        Py_ssize_t np = PySequence_Size(probes);
        Py_ssize_t nb = PySequence_Size(binds);
        Py_ssize_t nc = PySequence_Size(checks);
        if (np < 0 || nb < 0 || nc < 0) {
            Py_DECREF(probes);
            Py_DECREF(binds);
            Py_DECREF(checks);
            goto fail;
        }
        st->n_probes = (int)np;
        st->n_binds = (int)nb;
        st->n_checks = (int)nc;
        st->membership = (nb == 0 && nc == 0);
        st->n_verify = np > 1 ? (int)np : 0;
        st->probe_cols = cursor; cursor += np;
        st->probe_slots = cursor; cursor += np;
        st->bind_cols = cursor; cursor += nb;
        st->bind_slots = cursor; cursor += nb;
        st->check_cols = cursor; cursor += nc;
        st->check_slots = cursor; cursor += nc;
        int bad = pack_pairs(probes, st->probe_cols, st->probe_slots, np)
               || pack_pairs(binds, st->bind_cols, st->bind_slots, nb)
               || pack_pairs(checks, st->check_cols, st->check_slots, nc);
        Py_DECREF(probes);
        Py_DECREF(binds);
        Py_DECREF(checks);
        if (bad)
            goto fail;
    }
    Py_DECREF(seq);
    PyObject *capsule = PyCapsule_New(ns, STEPS_CAPSULE_NAME, steps_capsule_free);
    if (capsule == NULL)
        goto fail_nocapsule;
    return capsule;

fail:
    Py_DECREF(seq);
fail_nocapsule:
    PyMem_Free(ns->block);
    PyMem_Free(ns->steps);
    PyMem_Free(ns);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* Walk machinery                                                     */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject *index;     /* dict: (column, vid) -> list of int rows    */
    PyObject *irows;     /* set of int-row tuples                      */
    PyObject *rows_list; /* dense scan list of int-row tuples          */
    long *regs;
    Py_ssize_t n_regs;
} WalkCtx;

/* The (column, vid) index key. */
static PyObject *
make_key(long column, long vid)
{
    PyObject *key = PyTuple_New(2);
    if (key == NULL)
        return NULL;
    PyObject *a = PyLong_FromLong(column);
    PyObject *b = PyLong_FromLong(vid);
    if (a == NULL || b == NULL) {
        Py_XDECREF(a);
        Py_XDECREF(b);
        Py_DECREF(key);
        return NULL;
    }
    PyTuple_SET_ITEM(key, 0, a);
    PyTuple_SET_ITEM(key, 1, b);
    return key;
}

/* The membership-probe row tuple (regs projected onto probe slots). */
static PyObject *
make_probe_row(const NStep *st, const long *regs)
{
    PyObject *row = PyTuple_New(st->n_probes);
    if (row == NULL)
        return NULL;
    for (int i = 0; i < st->n_probes; i++) {
        PyObject *v = PyLong_FromLong(regs[st->probe_slots[i]]);
        if (v == NULL) {
            Py_DECREF(row);
            return NULL;
        }
        PyTuple_SET_ITEM(row, i, v);
    }
    return row;
}

/* Smallest index bucket over the step's probes; Py_None when a probe
 * has no bucket (walk fails), NULL on error.  Borrowed reference
 * otherwise (buckets are owned by the index dict, stable during a
 * walk: the walkers never mutate state). */
static PyObject *
smallest_bucket(const NStep *st, const WalkCtx *ctx)
{
    PyObject *best = NULL;
    Py_ssize_t best_len = 0;
    for (int i = 0; i < st->n_probes; i++) {
        PyObject *key = make_key(st->probe_cols[i], ctx->regs[st->probe_slots[i]]);
        if (key == NULL)
            return NULL;
        PyObject *bucket = PyDict_GetItemWithError(ctx->index, key);
        Py_DECREF(key);
        if (bucket == NULL) {
            if (PyErr_Occurred())
                return NULL;
            Py_RETURN_NONE;
        }
        Py_ssize_t len = PyList_GET_SIZE(bucket);
        if (len == 0)
            Py_RETURN_NONE;
        if (best == NULL || len < best_len) {
            best = bucket;
            best_len = len;
        }
    }
    return best;
}

/* One candidate row against the step: verify probes, apply binds,
 * apply checks.  Returns 1 when the row matches (binds written). */
static inline int
step_candidate(const NStep *st, long *regs, PyObject *irow)
{
    for (int i = 0; i < st->n_verify; i++) {
        PyObject *cell = PyTuple_GET_ITEM(irow, st->probe_cols[i]);
        if (PyLong_AsLong(cell) != regs[st->probe_slots[i]])
            return 0;
    }
    for (int i = 0; i < st->n_binds; i++) {
        PyObject *cell = PyTuple_GET_ITEM(irow, st->bind_cols[i]);
        regs[st->bind_slots[i]] = PyLong_AsLong(cell);
    }
    for (int i = 0; i < st->n_checks; i++) {
        PyObject *cell = PyTuple_GET_ITEM(irow, st->check_cols[i]);
        if (PyLong_AsLong(cell) != regs[st->check_slots[i]])
            return 0;
    }
    return 1;
}

/* has_extension: 1 found (regs hold the witness), 0 not, -1 error. */
static int
walk_has_extension(const NSteps *ns, int depth, WalkCtx *ctx)
{
    if (depth == ns->n_steps)
        return 1;
    const NStep *st = &ns->steps[depth];
    if (st->membership) {
        PyObject *row = make_probe_row(st, ctx->regs);
        if (row == NULL)
            return -1;
        int present = PySet_Contains(ctx->irows, row);
        Py_DECREF(row);
        if (present < 0)
            return -1;
        return present ? walk_has_extension(ns, depth + 1, ctx) : 0;
    }
    PyObject *best;
    if (st->n_probes) {
        best = smallest_bucket(st, ctx);
        if (best == NULL)
            return -1;
        if (best == Py_None) {
            Py_DECREF(best);
            return 0;
        }
    }
    else {
        best = ctx->rows_list;
    }
    Py_ssize_t n = PyList_GET_SIZE(best);
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *irow = PyList_GET_ITEM(best, i);
        if (!step_candidate(st, ctx->regs, irow))
            continue;
        int found = walk_has_extension(ns, depth + 1, ctx);
        if (found)
            return found; /* 1 or -1 */
    }
    return 0;
}

/* extend_matches: 0 ok, -1 error.  Completed matches are deduplicated
 * on the first n_universal registers and appended to out. */
static int
walk_extend(const NSteps *ns, int depth, WalkCtx *ctx, Py_ssize_t n_universal,
            PyObject *seen, PyObject *out)
{
    if (depth == ns->n_steps) {
        PyObject *key = PyTuple_New(n_universal);
        if (key == NULL)
            return -1;
        for (Py_ssize_t i = 0; i < n_universal; i++) {
            PyObject *v = PyLong_FromLong(ctx->regs[i]);
            if (v == NULL) {
                Py_DECREF(key);
                return -1;
            }
            PyTuple_SET_ITEM(key, i, v);
        }
        int present = PySet_Contains(seen, key);
        if (present < 0 ||
            (!present && (PySet_Add(seen, key) < 0 ||
                          PyList_Append(out, key) < 0))) {
            Py_DECREF(key);
            return -1;
        }
        Py_DECREF(key);
        return 0;
    }
    const NStep *st = &ns->steps[depth];
    if (st->membership) {
        PyObject *row = make_probe_row(st, ctx->regs);
        if (row == NULL)
            return -1;
        int present = PySet_Contains(ctx->irows, row);
        Py_DECREF(row);
        if (present < 0)
            return -1;
        if (present)
            return walk_extend(ns, depth + 1, ctx, n_universal, seen, out);
        return 0;
    }
    PyObject *best;
    if (st->n_probes) {
        best = smallest_bucket(st, ctx);
        if (best == NULL)
            return -1;
        if (best == Py_None) {
            Py_DECREF(best);
            return 0;
        }
    }
    else {
        best = ctx->rows_list;
    }
    Py_ssize_t n = PyList_GET_SIZE(best);
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *irow = PyList_GET_ITEM(best, i);
        if (!step_candidate(st, ctx->regs, irow))
            continue;
        if (walk_extend(ns, depth + 1, ctx, n_universal, seen, out) < 0)
            return -1;
    }
    return 0;
}

/* violation_walk: 1 violated (regs hold the witness), 0 holds, -1 error. */
static int
walk_violation(const NSteps *ns, int depth, WalkCtx *ctx, const NSteps *activity)
{
    if (depth == ns->n_steps) {
        /* Complete antecedent match: violated iff the conclusion atoms
         * have no extension (the precompiled trigger-activity probe). */
        int found = walk_has_extension(activity, 0, ctx);
        if (found < 0)
            return -1;
        return !found;
    }
    const NStep *st = &ns->steps[depth];
    if (st->membership) {
        PyObject *row = make_probe_row(st, ctx->regs);
        if (row == NULL)
            return -1;
        int present = PySet_Contains(ctx->irows, row);
        Py_DECREF(row);
        if (present < 0)
            return -1;
        return present ? walk_violation(ns, depth + 1, ctx, activity) : 0;
    }
    PyObject *best;
    if (st->n_probes) {
        best = smallest_bucket(st, ctx);
        if (best == NULL)
            return -1;
        if (best == Py_None) {
            Py_DECREF(best);
            return 0;
        }
    }
    else {
        best = ctx->rows_list;
    }
    Py_ssize_t n = PyList_GET_SIZE(best);
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *irow = PyList_GET_ITEM(best, i);
        if (!step_candidate(st, ctx->regs, irow))
            continue;
        int violated = walk_violation(ns, depth + 1, ctx, activity);
        if (violated)
            return violated; /* 1 or -1 */
    }
    return 0;
}

/* retraction_walk: 1 proper retraction found (regs hold the witness),
 * 0 not, -1 error.  `used` is the image-row set; a repeated image row
 * proves row-non-injectivity, after which only existence is needed. */
static int
walk_retraction(const NSteps *ns, int depth, WalkCtx *ctx, PyObject *used)
{
    if (depth == ns->n_steps)
        return 0; /* complete, but row-injective: not a proper retraction */
    const NStep *st = &ns->steps[depth];
    if (st->membership) {
        PyObject *row = make_probe_row(st, ctx->regs);
        if (row == NULL)
            return -1;
        int present = PySet_Contains(ctx->irows, row);
        if (present < 0) {
            Py_DECREF(row);
            return -1;
        }
        if (!present) {
            Py_DECREF(row);
            return 0;
        }
        int repeated = PySet_Contains(used, row);
        if (repeated < 0) {
            Py_DECREF(row);
            return -1;
        }
        if (repeated) {
            Py_DECREF(row);
            return walk_has_extension(ns, depth + 1, ctx);
        }
        if (PySet_Add(used, row) < 0) {
            Py_DECREF(row);
            return -1;
        }
        int found = walk_retraction(ns, depth + 1, ctx, used);
        if (found != -1 && PySet_Discard(used, row) < 0)
            found = -1;
        Py_DECREF(row);
        return found;
    }
    PyObject *best;
    if (st->n_probes) {
        best = smallest_bucket(st, ctx);
        if (best == NULL)
            return -1;
        if (best == Py_None) {
            Py_DECREF(best);
            return 0;
        }
    }
    else {
        best = ctx->rows_list;
    }
    Py_ssize_t n = PyList_GET_SIZE(best);
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *irow = PyList_GET_ITEM(best, i);
        if (!step_candidate(st, ctx->regs, irow))
            continue;
        int repeated = PySet_Contains(used, irow);
        if (repeated < 0)
            return -1;
        if (repeated) {
            int found = walk_has_extension(ns, depth + 1, ctx);
            if (found)
                return found; /* 1 or -1 */
            continue;
        }
        if (PySet_Add(used, irow) < 0)
            return -1;
        int found = walk_retraction(ns, depth + 1, ctx, used);
        if (found != -1 && PySet_Discard(used, irow) < 0)
            found = -1;
        if (found)
            return found; /* 1 or -1 */
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* Entry-point plumbing                                               */
/* ------------------------------------------------------------------ */

#define REGS_STACK 128

/* Copy the register list into a C array (stack buffer when small). */
static long *
load_regs(PyObject *regs_list, long *stack, Py_ssize_t *n_out)
{
    if (!PyList_Check(regs_list)) {
        PyErr_SetString(PyExc_TypeError, "regs must be a list");
        return NULL;
    }
    Py_ssize_t n = PyList_GET_SIZE(regs_list);
    long *regs = stack;
    if (n > REGS_STACK) {
        regs = PyMem_Malloc((size_t)n * sizeof(long));
        if (regs == NULL) {
            PyErr_NoMemory();
            return NULL;
        }
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        regs[i] = PyLong_AsLong(PyList_GET_ITEM(regs_list, i));
        if (regs[i] == -1 && PyErr_Occurred()) {
            if (regs != stack)
                PyMem_Free(regs);
            return NULL;
        }
    }
    *n_out = n;
    return regs;
}

/* Write the C registers back into the Python list (witness reads). */
static int
store_regs(PyObject *regs_list, const long *regs, Py_ssize_t n)
{
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *v = PyLong_FromLong(regs[i]);
        if (v == NULL)
            return -1;
        PyList_SetItem(regs_list, i, v); /* steals v */
    }
    return 0;
}

static NSteps *
unpack_steps(PyObject *capsule)
{
    return (NSteps *)PyCapsule_GetPointer(capsule, STEPS_CAPSULE_NAME);
}

/* has_extension(index, irows, rows_list, steps, regs) -> bool */
static PyObject *
native_has_extension(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 5) {
        PyErr_SetString(PyExc_TypeError, "has_extension expects 5 arguments");
        return NULL;
    }
    NSteps *ns = unpack_steps(args[3]);
    if (ns == NULL)
        return NULL;
    long stack[REGS_STACK];
    Py_ssize_t n_regs;
    long *regs = load_regs(args[4], stack, &n_regs);
    if (regs == NULL)
        return NULL;
    WalkCtx ctx = {args[0], args[1], args[2], regs, n_regs};
    int found = walk_has_extension(ns, 0, &ctx);
    if (found == 1 && store_regs(args[4], regs, n_regs) < 0)
        found = -1;
    if (regs != stack)
        PyMem_Free(regs);
    if (found < 0)
        return NULL;
    return PyBool_FromLong(found);
}

/* extend_matches(index, irows, rows_list, steps, regs, n_universal,
 *                seen, out) -> None */
static PyObject *
native_extend_matches(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 8) {
        PyErr_SetString(PyExc_TypeError, "extend_matches expects 8 arguments");
        return NULL;
    }
    NSteps *ns = unpack_steps(args[3]);
    if (ns == NULL)
        return NULL;
    Py_ssize_t n_universal = PyLong_AsSsize_t(args[5]);
    if (n_universal == -1 && PyErr_Occurred())
        return NULL;
    long stack[REGS_STACK];
    Py_ssize_t n_regs;
    long *regs = load_regs(args[4], stack, &n_regs);
    if (regs == NULL)
        return NULL;
    WalkCtx ctx = {args[0], args[1], args[2], regs, n_regs};
    int rc = walk_extend(ns, 0, &ctx, n_universal, args[6], args[7]);
    if (regs != stack)
        PyMem_Free(regs);
    if (rc < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* violation_walk(index, irows, rows_list, steps, activity_steps, regs)
 * -> bool */
static PyObject *
native_violation_walk(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 6) {
        PyErr_SetString(PyExc_TypeError, "violation_walk expects 6 arguments");
        return NULL;
    }
    NSteps *ns = unpack_steps(args[3]);
    if (ns == NULL)
        return NULL;
    NSteps *activity = unpack_steps(args[4]);
    if (activity == NULL)
        return NULL;
    long stack[REGS_STACK];
    Py_ssize_t n_regs;
    long *regs = load_regs(args[5], stack, &n_regs);
    if (regs == NULL)
        return NULL;
    WalkCtx ctx = {args[0], args[1], args[2], regs, n_regs};
    int violated = walk_violation(ns, 0, &ctx, activity);
    if (violated == 1 && store_regs(args[5], regs, n_regs) < 0)
        violated = -1;
    if (regs != stack)
        PyMem_Free(regs);
    if (violated < 0)
        return NULL;
    return PyBool_FromLong(violated);
}

/* retraction_walk(index, irows, rows_list, steps, regs, used) -> bool */
static PyObject *
native_retraction_walk(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 6) {
        PyErr_SetString(PyExc_TypeError, "retraction_walk expects 6 arguments");
        return NULL;
    }
    NSteps *ns = unpack_steps(args[3]);
    if (ns == NULL)
        return NULL;
    long stack[REGS_STACK];
    Py_ssize_t n_regs;
    long *regs = load_regs(args[4], stack, &n_regs);
    if (regs == NULL)
        return NULL;
    WalkCtx ctx = {args[0], args[1], args[2], regs, n_regs};
    int found = walk_retraction(ns, 0, &ctx, args[5]);
    if (found == 1 && store_regs(args[4], regs, n_regs) < 0)
        found = -1;
    if (regs != stack)
        PyMem_Free(regs);
    if (found < 0)
        return NULL;
    return PyBool_FromLong(found);
}

/* ------------------------------------------------------------------ */
/* Interning fast paths                                               */
/* ------------------------------------------------------------------ */

/* One value through the intern table: ids[value], minting on miss. */
static long
intern_value(PyObject *value, PyObject *ids, PyObject *values)
{
    PyObject *idx = PyDict_GetItemWithError(ids, value);
    if (idx != NULL)
        return PyLong_AsLong(idx);
    if (PyErr_Occurred())
        return -1;
    long minted = (long)PyList_GET_SIZE(values);
    PyObject *boxed = PyLong_FromLong(minted);
    if (boxed == NULL)
        return -1;
    if (PyDict_SetItem(ids, value, boxed) < 0 ||
        PyList_Append(values, value) < 0) {
        Py_DECREF(boxed);
        return -1;
    }
    Py_DECREF(boxed);
    return minted;
}

/* The interned twin of a Value row. */
static PyObject *
intern_row_obj(PyObject *row, PyObject *ids, PyObject *values)
{
    Py_ssize_t n = PyTuple_GET_SIZE(row);
    PyObject *irow = PyTuple_New(n);
    if (irow == NULL)
        return NULL;
    for (Py_ssize_t i = 0; i < n; i++) {
        long vid = intern_value(PyTuple_GET_ITEM(row, i), ids, values);
        if (vid < 0 && PyErr_Occurred()) {
            Py_DECREF(irow);
            return NULL;
        }
        PyObject *boxed = PyLong_FromLong(vid);
        if (boxed == NULL) {
            Py_DECREF(irow);
            return NULL;
        }
        PyTuple_SET_ITEM(irow, i, boxed);
    }
    return irow;
}

/* intern_row(row, ids, values) -> int tuple */
static PyObject *
native_intern_row(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError, "intern_row expects 3 arguments");
        return NULL;
    }
    if (!PyTuple_Check(args[0])) {
        PyErr_SetString(PyExc_TypeError, "row must be a tuple");
        return NULL;
    }
    return intern_row_obj(args[0], args[1], args[2]);
}

/* fill_state(instance, ids, values, irows, rows_list, pos, index) -> None
 *
 * One pass over the instance's rows: intern, admit into the row set,
 * the dense scan list, the position map and the inverted index — the
 * C twin of KernelState.__init__'s python loop.
 */
static PyObject *
native_fill_state(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 7) {
        PyErr_SetString(PyExc_TypeError, "fill_state expects 7 arguments");
        return NULL;
    }
    PyObject *ids = args[1], *values = args[2], *irows = args[3];
    PyObject *rows_list = args[4], *pos = args[5], *index = args[6];
    PyObject *iter = PyObject_GetIter(args[0]);
    if (iter == NULL)
        return NULL;
    PyObject *row;
    while ((row = PyIter_Next(iter)) != NULL) {
        PyObject *irow = intern_row_obj(row, ids, values);
        Py_DECREF(row);
        if (irow == NULL)
            goto fail;
        /* _admit */
        PyObject *at = PyLong_FromSsize_t(PyList_GET_SIZE(rows_list));
        if (at == NULL) {
            Py_DECREF(irow);
            goto fail;
        }
        int bad = PySet_Add(irows, irow) < 0
               || PyDict_SetItem(pos, irow, at) < 0
               || PyList_Append(rows_list, irow) < 0;
        Py_DECREF(at);
        if (bad) {
            Py_DECREF(irow);
            goto fail;
        }
        Py_ssize_t width = PyTuple_GET_SIZE(irow);
        for (Py_ssize_t column = 0; column < width; column++) {
            PyObject *cell = PyTuple_GET_ITEM(irow, column);
            PyObject *key = PyTuple_New(2);
            if (key == NULL) {
                Py_DECREF(irow);
                goto fail;
            }
            PyObject *col = PyLong_FromSsize_t(column);
            if (col == NULL) {
                Py_DECREF(key);
                Py_DECREF(irow);
                goto fail;
            }
            PyTuple_SET_ITEM(key, 0, col);
            Py_INCREF(cell);
            PyTuple_SET_ITEM(key, 1, cell);
            PyObject *bucket = PyDict_GetItemWithError(index, key);
            if (bucket == NULL) {
                if (PyErr_Occurred()) {
                    Py_DECREF(key);
                    Py_DECREF(irow);
                    goto fail;
                }
                bucket = PyList_New(0);
                if (bucket == NULL ||
                    PyDict_SetItem(index, key, bucket) < 0) {
                    Py_XDECREF(bucket);
                    Py_DECREF(key);
                    Py_DECREF(irow);
                    goto fail;
                }
                Py_DECREF(bucket); /* index holds it now */
            }
            int appended = PyList_Append(bucket, irow);
            Py_DECREF(key);
            if (appended < 0) {
                Py_DECREF(irow);
                goto fail;
            }
        }
        Py_DECREF(irow);
    }
    Py_DECREF(iter);
    if (PyErr_Occurred())
        return NULL;
    Py_RETURN_NONE;

fail:
    Py_DECREF(iter);
    return NULL;
}

/* ------------------------------------------------------------------ */

static PyMethodDef native_methods[] = {
    {"pack_steps", (PyCFunction)native_pack_steps, METH_O,
     "Pack (probes, binds, checks) triples into a C step program."},
    {"has_extension", (PyCFunction)(void (*)(void))native_has_extension,
     METH_FASTCALL, "Early-exit existence walk; witness written to regs."},
    {"extend_matches", (PyCFunction)(void (*)(void))native_extend_matches,
     METH_FASTCALL, "Collect matches deduped on the universal registers."},
    {"violation_walk", (PyCFunction)(void (*)(void))native_violation_walk,
     METH_FASTCALL,
     "First antecedent match with no conclusion extension."},
    {"retraction_walk", (PyCFunction)(void (*)(void))native_retraction_walk,
     METH_FASTCALL, "Image-shrinks early-exit endomorphism walk."},
    {"intern_row", (PyCFunction)(void (*)(void))native_intern_row,
     METH_FASTCALL, "Intern one Value row to a dense-int tuple."},
    {"fill_state", (PyCFunction)(void (*)(void))native_fill_state,
     METH_FASTCALL,
     "Bulk intern + admit an instance's rows into a kernel view."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef native_module = {
    PyModuleDef_HEAD_INIT,
    "repro.kernel._native",
    "Compiled join-kernel walkers (see repro.kernel.joins for the "
    "reference implementation and repro.kernel.backend for selection).",
    -1,
    native_methods,
};

PyMODINIT_FUNC
PyInit__native(void)
{
    return PyModule_Create(&native_module);
}

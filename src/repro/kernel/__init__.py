"""The shared join-kernel layer.

One engine under every homomorphism-shaped problem in the library: the
chase (:mod:`repro.chase.plan`), model checking
(:mod:`repro.chase.checkplan`), and the compiled homomorphism /
core / conjunctive-query engine (:mod:`repro.relational.homplan`) all
build their compiled plans from these primitives.

The kernel ships two interchangeable walker backends — the pure-python
reference implementation (:mod:`repro.kernel.joins`) and an optional
compiled C extension (:mod:`repro.kernel._native`) — selected
process-wide by :mod:`repro.kernel.backend`
(``REPRO_JOIN_BACKEND=auto|native|python``).
"""

from repro.kernel.backend import (
    join_backend_info,
    native_available,
    resolve_join_backend,
    set_join_backend,
)
from repro.kernel.joins import (
    AtomStep,
    IntRow,
    KernelState,
    atom_equality_pattern,
    compile_atom,
    compile_steps,
    extend_matches,
    has_extension,
    memoized,
    retraction_walk,
    violation_walk,
)

__all__ = [
    "AtomStep",
    "IntRow",
    "KernelState",
    "atom_equality_pattern",
    "compile_atom",
    "compile_steps",
    "extend_matches",
    "has_extension",
    "violation_walk",
    "retraction_walk",
    "memoized",
    "resolve_join_backend",
    "set_join_backend",
    "native_available",
    "join_backend_info",
]

"""The shared join-kernel layer.

One engine under every homomorphism-shaped problem in the library: the
chase (:mod:`repro.chase.plan`), model checking
(:mod:`repro.chase.checkplan`), and the compiled homomorphism /
core / conjunctive-query engine (:mod:`repro.relational.homplan`) all
build their compiled plans from these primitives.
"""

from repro.kernel.joins import (
    AtomStep,
    IntRow,
    KernelState,
    atom_equality_pattern,
    compile_atom,
    compile_steps,
    extend_matches,
    has_extension,
    memoized,
)

__all__ = [
    "AtomStep",
    "IntRow",
    "KernelState",
    "atom_equality_pattern",
    "compile_atom",
    "compile_steps",
    "extend_matches",
    "has_extension",
    "memoized",
]

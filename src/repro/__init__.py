"""repro: Gurevich & Lewis (1982), "The Inference Problem for Template
Dependencies", as a runnable library.

The package provides (see DESIGN.md for the full inventory):

* a typed relational substrate (:mod:`repro.relational`);
* template dependencies, EIDs and the diagram notation
  (:mod:`repro.dependencies`);
* a budgeted chase engine with certificates (:mod:`repro.chase`);
* the semigroup word-problem machinery (:mod:`repro.semigroups`);
* the paper's reduction, both directions machine-verified
  (:mod:`repro.reduction`);
* a three-valued inference facade (:mod:`repro.core`);
* canonical workloads and generators (:mod:`repro.workloads`);
* a batch inference service — canonical query hashing, a
  content-addressed result cache and a parallel chase scheduler
  (:mod:`repro.service`).

Quickstart::

    from repro import parse_td, infer, Semantics

    transitivity = parse_td("R(x,y) & R(y,z) -> R(x,z)")
    goal = parse_td("R(x,y) & R(y,z) & R(z,w) -> R(x,w)")
    report = infer([transitivity], goal)
    assert report.proved
"""

from repro.chase import Budget, ChaseStatus, ChaseVariant, InferenceStatus, chase, implies
from repro.core import Semantics, equivalent_sets, infer, is_redundant, minimal_cover
from repro.dependencies import (
    Diagram,
    EmbeddedImplicationalDependency,
    TemplateDependency,
    Variable,
    diagram_of,
    parse_dependency,
    parse_td,
    render_ascii,
    render_dot,
)
from repro.reduction import (
    ReductionEncoding,
    classify_instance,
    encode,
    prove_direction_a,
    prove_direction_b,
)
from repro.dependencies.canonical import dependency_fingerprint, query_fingerprint
from repro.relational import Const, Instance, LabeledNull, Schema
from repro.semigroups import Equation, FiniteSemigroup, Presentation, word_problem
from repro.service import InferenceService, ResultCache

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # relational
    "Schema",
    "Instance",
    "Const",
    "LabeledNull",
    # dependencies
    "Variable",
    "TemplateDependency",
    "EmbeddedImplicationalDependency",
    "Diagram",
    "diagram_of",
    "parse_td",
    "parse_dependency",
    "render_ascii",
    "render_dot",
    # chase
    "Budget",
    "chase",
    "ChaseStatus",
    "ChaseVariant",
    "implies",
    "InferenceStatus",
    # core facade
    "infer",
    "Semantics",
    "equivalent_sets",
    "is_redundant",
    "minimal_cover",
    # semigroups
    "Presentation",
    "Equation",
    "FiniteSemigroup",
    "word_problem",
    # reduction
    "encode",
    "ReductionEncoding",
    "prove_direction_a",
    "prove_direction_b",
    "classify_instance",
    # batch service
    "InferenceService",
    "ResultCache",
    "dependency_fingerprint",
    "query_fingerprint",
]

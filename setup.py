from pathlib import Path

from setuptools import Extension, find_packages, setup
from setuptools.command.build_ext import build_ext


class optional_build_ext(build_ext):
    """Build the native join kernel when a toolchain exists; skip otherwise.

    ``repro.kernel._native`` is a pure speedup: the python walkers in
    ``repro.kernel.joins`` implement identical semantics, and the
    backend resolver (``repro.kernel.backend``) falls back to them when
    the extension is absent. A missing compiler (or any build failure)
    must therefore degrade the install, never fail it.
    """

    def run(self):
        try:
            super().run()
        except Exception as exc:  # compiler missing, headers missing, ...
            self._skip(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:
            self._skip(exc)

    def _skip(self, exc):
        print(
            "WARNING: could not build the optional native join kernel "
            f"(repro.kernel._native): {exc}\n"
            "         Falling back to the pure-python join backend — "
            "behavior is identical, only slower."
        )


setup(
    name="repro-gurevich-lewis-1982",
    version="1.2.0",
    description=(
        "Gurevich & Lewis (1982), 'The Inference Problem for Template "
        "Dependencies': chase-based inference with certificates, the "
        "word-problem reduction, and a batch inference service"
    ),
    long_description=Path(__file__).with_name("README.md").read_text(encoding="utf-8"),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    ext_modules=[
        Extension(
            "repro.kernel._native",
            sources=["src/repro/kernel/_native.c"],
            optional=True,
        ),
    ],
    cmdclass={"build_ext": optional_build_ext},
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering",
        "Topic :: Database",
    ],
)

from pathlib import Path

from setuptools import find_packages, setup

setup(
    name="repro-gurevich-lewis-1982",
    version="1.1.0",
    description=(
        "Gurevich & Lewis (1982), 'The Inference Problem for Template "
        "Dependencies': chase-based inference with certificates, the "
        "word-problem reduction, and a batch inference service"
    ),
    long_description=Path(__file__).with_name("README.md").read_text(encoding="utf-8"),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering",
        "Topic :: Database",
    ],
)

"""Unit tests for repro.workloads.garment."""

from repro.relational.values import Const
from repro.workloads.garment import (
    figure1_dependency,
    garment_database,
    garment_eid,
    garment_schema,
)


class TestGarmentWorkload:
    def test_schema_matches_paper(self):
        assert garment_schema().attributes == ("SUPPLIER", "STYLE", "SIZE")

    def test_database_contains_papers_tuples(self):
        db = garment_database()
        assert (
            Const("St. Laurent"),
            Const("Evening Dress"),
            Const("size-10"),
        ) in db
        assert (Const("BVD"), Const("Brief"), Const("size-36")) in db

    def test_database_is_typed(self):
        garment_database().validate()

    def test_figure1_shape(self):
        fig1 = figure1_dependency()
        assert len(fig1.antecedents) == 2
        assert fig1.is_embedded()
        assert fig1.is_typed()
        assert {v.name for v in fig1.existential_variables()} == {"a*"}

    def test_eid_shape(self):
        eid = garment_eid()
        assert len(eid.conclusions) == 2
        assert not eid.is_template_dependency()

    def test_figure1_diagram_matches_paper(self):
        """Fig 1: edges SUPPLIER(1,2), STYLE(1,*), SIZE(2,*)."""
        from repro.dependencies.diagram import DiagramEdge, diagram_of

        diagram = diagram_of(figure1_dependency())
        assert diagram.edges == frozenset(
            {
                DiagramEdge.make("1", "2", "SUPPLIER"),
                DiagramEdge.make("1", "*", "STYLE"),
                DiagramEdge.make("2", "*", "SIZE"),
            }
        )

"""Unit tests for repro.workloads.instances."""

import pytest

from repro.semigroups.rewriting import word_problem
from repro.semigroups.search import find_counter_model
from repro.workloads.instances import (
    gap_instance,
    negative_family,
    negative_instance,
    positive_chain_family,
    positive_instance,
)


class TestCanonicalInstances:
    def test_positive_is_positive(self):
        assert word_problem(positive_instance()) is not None

    def test_positive_has_no_counter_model(self):
        assert find_counter_model(positive_instance(), max_size=4) is None

    def test_negative_is_negative(self):
        assert find_counter_model(negative_instance()) is not None

    def test_negative_has_no_derivation(self):
        assert word_problem(negative_instance(), max_visited=3_000) is None

    def test_gap_has_neither(self):
        assert word_problem(gap_instance(), max_visited=3_000) is None
        assert find_counter_model(gap_instance(), max_size=4) is None

    def test_all_instances_short_form_with_zero_equations(self):
        for presentation in (
            positive_instance(),
            negative_instance(),
            gap_instance(),
        ):
            assert presentation.is_short_form()
            assert presentation.has_zero_equations()


class TestFamilies:
    @pytest.mark.parametrize("chain", [1, 2, 3])
    def test_chain_family_positive(self, chain):
        derivation = word_problem(
            positive_chain_family(chain), max_length=chain + 4
        )
        assert derivation is not None

    def test_chain_family_derivation_grows(self):
        short = word_problem(positive_chain_family(1), max_length=6)
        long = word_problem(positive_chain_family(4), max_length=9)
        assert long.length > short.length

    def test_chain_family_rejects_zero(self):
        with pytest.raises(ValueError):
            positive_chain_family(0)

    @pytest.mark.parametrize("extra", [0, 1, 3])
    def test_negative_family_alphabet_scales(self, extra):
        presentation = negative_family(extra)
        assert len(presentation.alphabet) == extra + 2

    def test_negative_family_refutable(self):
        assert find_counter_model(negative_family(2)) is not None

    def test_negative_extra_letters_variant(self):
        presentation = negative_instance(extra_letters=2)
        assert len(presentation.alphabet) == 4
        assert find_counter_model(presentation) is not None

    def test_negative_family_without_squares(self):
        presentation = negative_family(2, squares_to_zero=False)
        assert find_counter_model(presentation) is not None

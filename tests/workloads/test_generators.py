"""Unit tests for repro.workloads.generators."""

import pytest

from repro.chase.engine import chase
from repro.chase.implication import InferenceStatus, implies
from repro.chase.result import ChaseStatus
from repro.workloads.generators import (
    random_full_td,
    random_instance,
    random_td,
    transitivity_family,
)


class TestRandomTd:
    def test_deterministic_in_seed(self):
        assert random_td(seed=7) == random_td(seed=7)

    def test_different_seeds_differ_somewhere(self):
        dependencies = {random_td(seed=s) for s in range(10)}
        assert len(dependencies) > 1

    def test_typed_by_construction(self):
        for seed in range(10):
            assert random_td(seed=seed).is_typed()

    def test_requested_shape(self):
        td = random_td(arity=4, antecedents=5, seed=1)
        assert td.schema.arity == 4
        assert len(td.antecedents) == 5

    def test_full_variant_has_no_existentials(self):
        for seed in range(10):
            assert random_full_td(seed=seed).is_full()

    def test_existential_probability_one_all_existential(self):
        td = random_td(existential_probability=1.0, seed=0)
        assert len(td.existential_variables()) == td.schema.arity


class TestRandomInstance:
    def test_deterministic_in_seed(self):
        assert random_instance(seed=5) == random_instance(seed=5)

    def test_typed_by_construction(self):
        random_instance(seed=3).validate()

    def test_row_count_bounded_by_request(self):
        instance = random_instance(rows=10, seed=2)
        assert 1 <= len(instance) <= 10  # duplicates collapse

    def test_constants_per_column_respected(self):
        instance = random_instance(rows=50, constants_per_column=2, seed=1)
        for column in range(instance.schema.arity):
            assert len(instance.column_values(column)) <= 2


class TestTransitivityFamily:
    def test_instances_provable(self):
        deps, target = transitivity_family(4)
        assert implies(deps, target).status is InferenceStatus.PROVED

    def test_minimum_length(self):
        with pytest.raises(ValueError):
            transitivity_family(1)

    def test_full_tds_terminate(self):
        deps, target = transitivity_family(3)
        start, __ = target.freeze()
        result = chase(start, deps)
        assert result.status is ChaseStatus.TERMINATED


class TestGeneratedChaseBehaviour:
    """Random full TDs always give terminating chases (sanity-of-substrate)."""

    @pytest.mark.parametrize("seed", range(5))
    def test_full_td_chase_terminates(self, seed):
        dependency = random_full_td(seed=seed)
        instance = random_instance(seed=seed)
        result = chase(instance, [dependency])
        assert result.status is ChaseStatus.TERMINATED
        assert dependency.holds_in(result.instance)


class TestRandomEid:
    def test_deterministic_and_typed(self):
        from repro.workloads.generators import random_eid

        eid = random_eid(seed=3)
        assert eid == random_eid(seed=3)
        assert eid.is_typed()
        assert len(eid.conclusions) == 2

    def test_conclusion_atoms_share_existential_witnesses(self):
        from repro.workloads.generators import random_eid

        # With certainty-probability existentials, every conclusion cell
        # in a column uses the *same* existential variable.
        eid = random_eid(seed=0, existential_probability=1.0, conclusions=3)
        for column in range(eid.schema.arity):
            cells = {atom[column] for atom in eid.conclusions}
            assert len(cells) == 1
        assert eid.existential_variables()


class TestWeaklyAcyclicDependencies:
    def test_deterministic_and_weakly_acyclic(self):
        from repro.chase.termination import is_weakly_acyclic
        from repro.workloads.generators import weakly_acyclic_dependencies

        deps = weakly_acyclic_dependencies(seed=5)
        assert deps == weakly_acyclic_dependencies(seed=5)
        assert is_weakly_acyclic(deps)

    @pytest.mark.parametrize("seed", range(4))
    def test_every_chase_order_terminates(self, seed):
        from repro.chase.engine import ChaseVariant
        from repro.workloads.generators import weakly_acyclic_dependencies

        deps = weakly_acyclic_dependencies(seed=seed, include_eids=True)
        instance = random_instance(seed=seed, rows=6)
        for variant in (ChaseVariant.STANDARD, ChaseVariant.SEMI_NAIVE):
            result = chase(instance, deps, variant=variant)
            assert result.status is ChaseStatus.TERMINATED

"""Tests for the bounded quotient (repro.semigroups.congruence)."""

import pytest

from repro.semigroups.congruence import (
    bounded_quotient,
    quotient_agrees_with_rewriting,
)
from repro.workloads.instances import (
    gap_instance,
    negative_instance,
    positive_instance,
)


class TestBoundedQuotient:
    def test_word_count(self):
        quotient = bounded_quotient(negative_instance(), 3)
        # alphabet {A0, 0}: 2 + 4 + 8 = 14 words.
        assert quotient.word_count == 14

    def test_positive_instance_collapses(self):
        quotient = bounded_quotient(positive_instance(), 2)
        assert quotient.a0_collapses()

    def test_negative_instance_does_not_collapse(self):
        quotient = bounded_quotient(negative_instance(), 4)
        assert not quotient.a0_collapses()

    def test_gap_instance_does_not_collapse(self):
        quotient = bounded_quotient(gap_instance(), 4)
        assert not quotient.a0_collapses()

    def test_zero_class_absorbs_in_negative_instance(self):
        """All words containing 0 collapse to the 0 class (zero laws)."""
        quotient = bounded_quotient(negative_instance(), 3)
        zero_class = quotient.classes[quotient.class_of[("0",)]]
        for word in quotient.class_of:
            if "0" in word:
                assert word in zero_class

    def test_class_count_positive_vs_negative(self):
        """In the positive instance everything containing A0 or 0 merges;
        the negative instance keeps the A0-powers apart."""
        positive = bounded_quotient(positive_instance(), 3)
        negative = bounded_quotient(negative_instance(), 3)
        assert positive.class_count < negative.class_count

    def test_products_well_defined(self):
        quotient = bounded_quotient(negative_instance(), 4)
        for (left, right), result in quotient.products.items():
            assert result == quotient.class_of[left + right]

    def test_products_respect_congruence(self):
        """Class multiplication is independent of representatives (spot
        check: multiplying members of one class lands in one class)."""
        quotient = bounded_quotient(positive_instance(), 3)
        for representative, members in quotient.classes.items():
            for member in members:
                if len(member) + 1 <= quotient.bound:
                    product_class = quotient.class_of.get(
                        member + (quotient.presentation.a0,)
                    )
                    expected = quotient.class_of.get(
                        representative + (quotient.presentation.a0,)
                    )
                    if product_class is not None and expected is not None:
                        assert product_class == expected

    def test_bound_validation(self):
        with pytest.raises(ValueError):
            bounded_quotient(negative_instance(), 0)

    def test_describe(self):
        quotient = bounded_quotient(positive_instance(), 2)
        assert "A0 ~ 0: True" in quotient.describe()


class TestCrossValidation:
    @pytest.mark.parametrize(
        "build", [positive_instance, negative_instance, gap_instance]
    )
    def test_quotient_agrees_with_rewriting(self, build):
        assert quotient_agrees_with_rewriting(build(), 3)

"""Unit tests for repro.semigroups.words."""

import pytest

from repro.errors import PresentationError
from repro.semigroups.words import (
    concat,
    letters_of,
    occurrences,
    replace_at,
    show,
    single_replacements,
    word,
)


class TestWord:
    def test_from_sequence(self):
        assert word(["A", "B"]) == ("A", "B")

    def test_plain_string_is_single_letter(self):
        # "A0" is one letter, not two characters.
        assert word("A0") == ("A0",)

    def test_empty_rejected(self):
        with pytest.raises(PresentationError):
            word([])

    def test_bad_letter_rejected(self):
        with pytest.raises(PresentationError):
            word(["A", ""])
        with pytest.raises(PresentationError):
            word([3])

    def test_show(self):
        assert show(("A0", "0")) == "A0.0"


class TestConcat:
    def test_concat(self):
        assert concat(("A",), ("B", "C")) == ("A", "B", "C")

    def test_letters_of(self):
        assert letters_of(("A", "B", "A")) == {"A", "B"}


class TestOccurrences:
    def test_single(self):
        assert list(occurrences(("A", "B", "C"), ("B",))) == [1]

    def test_overlapping(self):
        assert list(occurrences(("A", "A", "A"), ("A", "A"))) == [0, 1]

    def test_none(self):
        assert list(occurrences(("A", "B"), ("C",))) == []

    def test_pattern_longer_than_word(self):
        assert list(occurrences(("A",), ("A", "B"))) == []

    def test_full_word(self):
        assert list(occurrences(("A", "B"), ("A", "B"))) == [0]


class TestReplace:
    def test_replace_at(self):
        assert replace_at(("A", "B", "C"), 1, ("B",), ("X", "Y")) == (
            "A",
            "X",
            "Y",
            "C",
        )

    def test_replace_verifies_occurrence(self):
        with pytest.raises(PresentationError):
            replace_at(("A", "B"), 0, ("C",), ("X",))

    def test_single_replacements_all_positions(self):
        produced = set(single_replacements(("A", "A"), ("A",), ("B",)))
        assert produced == {("B", "A"), ("A", "B")}

    def test_single_replacements_grow(self):
        produced = list(single_replacements(("C",), ("C",), ("A", "B")))
        assert produced == [("A", "B")]

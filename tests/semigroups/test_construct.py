"""Unit tests for repro.semigroups.construct."""

import pytest

from repro.errors import SemigroupError
from repro.semigroups.construct import (
    adjoin_identity,
    adjoin_zero,
    cyclic_group,
    free_nilpotent,
    left_zero,
    monogenic,
    null_semigroup,
)


class TestNullSemigroup:
    def test_all_products_zero(self):
        null = null_semigroup(4)
        zero = null.zero()
        assert all(
            null.product(x, y) == zero for x in range(4) for y in range(4)
        )

    def test_no_identity_for_size_two_plus(self):
        assert not null_semigroup(2).has_identity()

    def test_size_one_rejects_zero(self):
        with pytest.raises(SemigroupError):
            null_semigroup(0)


class TestFreeNilpotent:
    def test_index_three_is_canonical_counter_model(self):
        nilpotent = free_nilpotent(3)
        assert nilpotent.size == 3
        assert nilpotent.zero() == 2
        # a * a = a^2, a * a^2 = 0.
        assert nilpotent.product(0, 0) == 1
        assert nilpotent.product(0, 1) == 2

    def test_nilpotency(self):
        for index in (2, 3, 5):
            nilpotent = free_nilpotent(index)
            power = 0
            for __ in range(index - 1):
                power = nilpotent.product(power, 0)
            assert power == nilpotent.zero()

    def test_index_below_two_rejected(self):
        with pytest.raises(SemigroupError):
            free_nilpotent(1)

    def test_names(self):
        assert free_nilpotent(3).names == ("a", "a^2", "zero")


class TestMonogenic:
    def test_cyclic_case(self):
        # index 1, period n: the cyclic group of order n.
        cyclic = monogenic(1, 4)
        assert cyclic.size == 4
        assert cyclic.has_identity()

    def test_index_and_period(self):
        semigroup = monogenic(3, 2)  # a..a^4, a^5 = a^3
        assert semigroup.size == 4
        a4 = semigroup.product(semigroup.product(0, 0), semigroup.product(0, 0))
        a5 = semigroup.product(a4, 0)
        assert a5 == 2  # a^5 = a^3 (0-based index 2)

    def test_invalid_parameters(self):
        with pytest.raises(SemigroupError):
            monogenic(0, 1)
        with pytest.raises(SemigroupError):
            monogenic(1, 0)


class TestCyclicGroup:
    def test_group_axioms(self):
        group = cyclic_group(5)
        assert group.has_identity()
        assert group.zero() is None

    def test_order_one(self):
        assert cyclic_group(1).size == 1


class TestLeftZero:
    def test_products(self):
        lz = left_zero(3)
        assert all(lz.product(x, y) == x for x in range(3) for y in range(3))


class TestAdjunctions:
    def test_adjoin_identity_adds_working_identity(self):
        extended = adjoin_identity(free_nilpotent(3))
        identity = extended.identity()
        assert identity == extended.size - 1
        assert all(
            extended.product(identity, x) == x for x in range(extended.size)
        )

    def test_adjoin_identity_preserves_base_products(self):
        base = free_nilpotent(3)
        extended = adjoin_identity(base)
        for x in range(base.size):
            for y in range(base.size):
                assert extended.product(x, y) == base.product(x, y)

    def test_adjoin_zero_overrides_old_zero(self):
        extended = adjoin_zero(null_semigroup(2))
        assert extended.zero() == extended.size - 1

    def test_adjoin_zero_to_group(self):
        extended = adjoin_zero(cyclic_group(3))
        assert extended.has_identity()
        assert extended.zero() == extended.size - 1

"""Unit tests for repro.semigroups.presentation."""

import pytest

from repro.errors import PresentationError
from repro.semigroups.presentation import Equation, Presentation
from repro.semigroups.rewriting import find_derivation


class TestEquation:
    def test_make(self):
        equation = Equation.make(["A", "B"], ["C"])
        assert equation.lhs == ("A", "B")
        assert equation.rhs == ("C",)

    def test_short_form(self):
        assert Equation.make(["A", "B"], ["C"]).is_short_form()
        assert not Equation.make(["A"], ["C"]).is_short_form()
        assert not Equation.make(["A", "B", "C"], ["D"]).is_short_form()
        assert not Equation.make(["A", "B"], ["C", "D"]).is_short_form()

    def test_letters(self):
        assert Equation.make(["A", "B"], ["C"]).letters() == {"A", "B", "C"}

    def test_oriented_puts_longer_left(self):
        equation = Equation.make(["C"], ["A", "B"])
        assert equation.oriented().lhs == ("A", "B")

    def test_str(self):
        assert str(Equation.make(["A", "B"], ["C"])) == "A.B = C"


class TestPresentationBasics:
    def test_requires_zero_in_alphabet(self):
        with pytest.raises(PresentationError):
            Presentation(["A0"], [])

    def test_requires_a0_in_alphabet(self):
        with pytest.raises(PresentationError):
            Presentation(["0"], [])

    def test_zero_and_a0_distinct(self):
        with pytest.raises(PresentationError):
            Presentation(["X"], [], zero="X", a0="X")

    def test_unknown_letter_in_equation_rejected(self):
        with pytest.raises(PresentationError):
            Presentation(["A0", "0"], [Equation.make(["Z", "0"], ["0"])])

    def test_alphabet_deduplicated_in_order(self):
        presentation = Presentation(["A0", "0", "A0"], [])
        assert presentation.alphabet == ("A0", "0")

    def test_describe_mentions_conclusion(self):
        presentation = Presentation(["A0", "0"], [])
        assert "A0 = 0" in presentation.describe()


class TestZeroEquations:
    def test_with_zero_equations_covers_all_letters(self):
        presentation = Presentation.with_zero_equations(["A0", "X", "0"])
        assert presentation.has_zero_equations()
        # per letter: X.0=0 and 0.X=0; for 0 itself only 0.0=0 (dedup).
        assert len(presentation.equations) == 5

    def test_has_zero_equations_false_without(self):
        presentation = Presentation(["A0", "0"], [])
        assert not presentation.has_zero_equations()

    def test_zero_equations_are_short_form(self):
        presentation = Presentation.with_zero_equations(["A0", "0"])
        assert presentation.is_short_form()

    def test_extra_equations_appended(self):
        extra = Equation.make(["A0", "A0"], ["0"])
        presentation = Presentation.with_zero_equations(["A0", "0"], [extra])
        assert extra in presentation.equations


class TestShortEquations:
    def test_short_equations_pass_through(self):
        presentation = Presentation.with_zero_equations(["A0", "0"])
        assert len(list(presentation.short_equations())) == 3

    def test_short_equations_reject_long(self):
        presentation = Presentation(
            ["A0", "B", "0"],
            [Equation.make(["A0", "B", "A0"], ["0"])],
        )
        with pytest.raises(PresentationError):
            list(presentation.short_equations())


class TestNormalisation:
    def test_already_short_unchanged_semantically(self):
        presentation = Presentation.with_zero_equations(["A0", "0"])
        normalized = presentation.normalized()
        assert normalized.is_short_form()
        assert set(normalized.equations) == set(presentation.equations)

    def test_paper_example_abc_eq_da(self):
        """ABC = DA becomes AB = E, DA = F, EC = F (up to naming)."""
        presentation = Presentation(
            ["A0", "A", "B", "C", "D", "0"],
            [Equation.make(["A", "B", "C"], ["D", "A"])],
        )
        normalized = presentation.normalized()
        assert normalized.is_short_form()
        # One abbreviation for AB, one for DA, plus the rewritten equation.
        assert len(normalized.equations) == 3
        assert len(normalized.alphabet) == len(presentation.alphabet) + 2

    def test_long_words_fully_abbreviated(self):
        presentation = Presentation(
            ["A0", "A", "0"],
            [Equation.make(["A"] * 5, ["A", "A"])],
        )
        normalized = presentation.normalized()
        assert normalized.is_short_form()

    def test_normalisation_preserves_derivability(self):
        """The positive instance stays positive after a detour through
        longer equations."""
        presentation = Presentation.with_zero_equations(
            ["A0", "0"],
            [
                # A0.A0.A0 = A0  and  A0.A0.A0 = 0: still forces A0 = 0.
                Equation.make(["A0", "A0", "A0"], ["A0"]),
                Equation.make(["A0", "A0", "A0"], ["0"]),
            ],
        )
        normalized = presentation.normalized()
        derivation = find_derivation(
            normalized, ("A0",), ("0",), max_length=8
        )
        assert derivation is not None

    def test_letter_identification_substitutes(self):
        presentation = Presentation(
            ["A0", "A", "B", "0"],
            [
                Equation.make(["A"], ["B"]),
                Equation.make(["A", "B"], ["0"]),
            ],
        )
        normalized = presentation.normalized()
        assert normalized.is_short_form()
        # A and B identified: the second equation mentions one letter only.
        survivors = {letter for eq in normalized.equations for letter in eq.letters()}
        assert not {"A", "B"} <= survivors

    def test_identifying_a0_with_zero_forces_positive(self):
        presentation = Presentation(
            ["A0", "0"],
            [Equation.make(["A0"], ["0"])],
        )
        normalized = presentation.normalized()
        assert normalized.is_short_form()
        derivation = find_derivation(normalized, ("A0",), ("0",), max_length=4)
        assert derivation is not None

    def test_fresh_letters_get_zero_equations(self):
        presentation = Presentation.with_zero_equations(
            ["A0", "A", "0"],
            [Equation.make(["A", "A", "A"], ["0"])],
        )
        normalized = presentation.normalized()
        assert normalized.has_zero_equations()

"""Unit tests for repro.semigroups.finite."""

import numpy as np
import pytest

from repro.errors import SemigroupError
from repro.semigroups.construct import (
    adjoin_identity,
    cyclic_group,
    free_nilpotent,
    left_zero,
    null_semigroup,
)
from repro.semigroups.finite import FiniteSemigroup
from repro.semigroups.presentation import Equation, Presentation
from repro.workloads.instances import negative_instance


class TestConstruction:
    def test_table_shape_enforced(self):
        with pytest.raises(SemigroupError):
            FiniteSemigroup([[0, 0]])

    def test_entries_in_range(self):
        with pytest.raises(SemigroupError):
            FiniteSemigroup([[5]])

    def test_empty_rejected(self):
        with pytest.raises(SemigroupError):
            FiniteSemigroup(np.empty((0, 0), dtype=np.int64))

    def test_associativity_checked(self):
        # x*y = x except 1*1 = 0 is not associative: (1*1)*1=0*1=0,
        # 1*(1*1)=1*0=1.
        with pytest.raises(SemigroupError):
            FiniteSemigroup([[0, 0], [1, 0]])

    def test_names_must_match_size(self):
        with pytest.raises(SemigroupError):
            FiniteSemigroup([[0]], names=["a", "b"])

    def test_check_skippable(self):
        table = left_zero(3).table
        assert FiniteSemigroup(table, check=False).size == 3


class TestStructure:
    def test_zero_detection(self):
        assert null_semigroup(3).zero() == 2
        assert left_zero(2).zero() is None

    def test_identity_detection(self):
        assert cyclic_group(4).identity() == 0
        assert free_nilpotent(3).identity() is None

    def test_trivial_semigroup_zero_is_identity(self):
        trivial = null_semigroup(1)
        assert trivial.zero() == 0
        assert trivial.identity() == 0

    def test_product(self):
        nilpotent = free_nilpotent(3)  # a, a^2, 0
        assert nilpotent.product(0, 0) == 1  # a * a = a^2
        assert nilpotent.product(0, 1) == 2  # a * a^2 = 0

    def test_generated_subsemigroup(self):
        nilpotent = free_nilpotent(4)  # a, a^2, a^3, 0
        assert nilpotent.generated_subsemigroup([0]) == {0, 1, 2, 3}
        assert nilpotent.generated_subsemigroup([1]) == {1, 3}

    def test_is_generated_by(self):
        nilpotent = free_nilpotent(3)
        assert nilpotent.is_generated_by([0])
        assert not nilpotent.is_generated_by([2])


class TestCancellation:
    def test_nilpotent_has_cancellation(self):
        for index in (2, 3, 4, 5):
            assert free_nilpotent(index).has_cancellation_property()

    def test_null_semigroup_has_cancellation(self):
        assert null_semigroup(3).has_cancellation_property()

    def test_requires_zero(self):
        with pytest.raises(SemigroupError):
            left_zero(2).satisfies_condition_i()

    def test_group_with_adjoined_zero_has_cancellation(self):
        from repro.semigroups.construct import adjoin_zero

        group = cyclic_group(3)
        with_zero = adjoin_zero(group)
        # Has an identity, so only condition (i) applies -- groups cancel.
        assert with_zero.has_identity()
        assert with_zero.has_cancellation_property()

    def test_condition_ii_fails_for_idempotent(self):
        # {e, 0} with e*e = e: e is idempotent and nonzero.
        semilattice = FiniteSemigroup([[0, 1], [1, 1]], names=["e", "zero"])
        assert semilattice.zero() == 1
        assert not semilattice.satisfies_condition_ii()

    def test_condition_i_fails_on_collision(self):
        # Null semigroup extended so two distinct right factors give the
        # same nonzero product would break (i); construct directly:
        # {a, b, c, 0}: a*b = c, a*a = c, rest 0. Check associativity:
        # products of three elements always hit 0. (a*a)*? = c*? = 0;
        # a*(a*?) = a*{c or 0} = 0 -- need a*c = 0 and c*x = 0: holds.
        table = np.zeros((4, 4), dtype=np.int64) + 3
        table[0, 1] = 2  # a*b = c
        table[0, 0] = 2  # a*a = c
        semigroup = FiniteSemigroup(table, names=["a", "b", "c", "zero"])
        assert not semigroup.satisfies_condition_i()
        assert not semigroup.has_cancellation_property()

    def test_adjoin_identity_preserves_cancellation(self):
        """The paper's key lemma for part (B)."""
        for index in (2, 3, 4):
            base = free_nilpotent(index)
            assert base.has_cancellation_property()
            extended = adjoin_identity(base)
            assert extended.has_identity()
            assert extended.has_cancellation_property()


class TestEvaluation:
    def test_evaluate_word(self):
        nilpotent = free_nilpotent(3)
        assignment = {"A0": 0, "0": 2}
        assert nilpotent.evaluate(("A0", "A0"), assignment) == 1
        assert nilpotent.evaluate(("A0", "A0", "A0"), assignment) == 2

    def test_evaluate_missing_letter(self):
        with pytest.raises(SemigroupError):
            free_nilpotent(3).evaluate(("X",), {})

    def test_satisfies_equation(self):
        nilpotent = free_nilpotent(3)
        assignment = {"A0": 0, "0": 2}
        zero_law = Equation.make(["A0", "0"], ["0"])
        assert nilpotent.satisfies_equation(zero_law, assignment)
        bogus = Equation.make(["A0", "A0"], ["A0"])
        assert not nilpotent.satisfies_equation(bogus, assignment)

    def test_satisfies_presentation(self):
        nilpotent = free_nilpotent(3)
        assignment = {"A0": 0, "0": 2}
        assert nilpotent.satisfies_presentation(negative_instance(), assignment)


class TestDisplay:
    def test_pretty_contains_names(self):
        text = free_nilpotent(3).pretty()
        assert "a" in text and "zero" in text

    def test_repr_flags(self):
        assert "zero" in repr(null_semigroup(2))
        assert "identity" in repr(cyclic_group(2))

    def test_equality_and_hash(self):
        assert free_nilpotent(3) == free_nilpotent(3)
        assert hash(free_nilpotent(3)) == hash(free_nilpotent(3))
        assert free_nilpotent(3) != free_nilpotent(4)

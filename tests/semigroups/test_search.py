"""Unit tests for repro.semigroups.search."""

import pytest

from repro.semigroups.finite import FiniteSemigroup
from repro.semigroups.presentation import Equation, Presentation
from repro.semigroups.search import (
    CounterModel,
    _iter_all_tables,
    find_counter_model,
    iter_semigroups,
)
from repro.workloads.instances import (
    gap_instance,
    negative_family,
    negative_instance,
    positive_instance,
)


class TestExhaustiveTables:
    def test_size_one_count(self):
        assert len(list(_iter_all_tables(1))) == 1

    def test_size_two_count(self):
        # 8 associative binary operations on a 2-element set.
        assert len(list(_iter_all_tables(2))) == 8

    def test_size_three_count(self):
        # Classic count: 113 associative tables on 3 labelled elements.
        assert len(list(_iter_all_tables(3))) == 113

    def test_all_results_associative(self):
        for semigroup in _iter_all_tables(2):
            assert semigroup.is_associative()


class TestCatalogue:
    def test_catalogue_members_are_semigroups(self):
        for semigroup in iter_semigroups(5):
            assert isinstance(semigroup, FiniteSemigroup)
            assert semigroup.is_associative()

    def test_catalogue_reaches_requested_size(self):
        sizes = {semigroup.size for semigroup in iter_semigroups(6)}
        assert 6 in sizes


class TestFindCounterModel:
    def test_negative_instance_has_counter_model(self):
        model = find_counter_model(negative_instance())
        assert model is not None
        semigroup, assignment = model.semigroup, model.assignment
        assert semigroup.zero() is not None
        assert not semigroup.has_identity()
        assert semigroup.has_cancellation_property()
        assert assignment["A0"] != semigroup.zero()
        assert assignment["0"] == semigroup.zero()
        assert semigroup.satisfies_presentation(negative_instance(), assignment)

    def test_counter_model_is_generated(self):
        model = find_counter_model(negative_instance())
        assert model.semigroup.is_generated_by(model.assignment.values())

    def test_positive_instance_has_no_counter_model(self):
        assert find_counter_model(positive_instance(), max_size=4) is None

    def test_gap_instance_has_no_cancellation_counter_model(self):
        """a*a = a with a != 0 contradicts condition (ii)."""
        assert find_counter_model(gap_instance(), max_size=4) is None

    def test_negative_family_with_square_equations(self):
        presentation = negative_family(2)
        model = find_counter_model(presentation)
        assert model is not None
        assert model.semigroup.satisfies_presentation(
            presentation, model.assignment
        )

    def test_require_generated_can_be_disabled(self):
        model = find_counter_model(
            negative_instance(), require_generated=False
        )
        assert model is not None

    def test_max_checked_budget(self):
        assert (
            find_counter_model(negative_instance(), max_checked=0) is None
        )

    def test_describe(self):
        model = find_counter_model(negative_instance())
        text = model.describe()
        assert "A0" in text and "semigroup" in text

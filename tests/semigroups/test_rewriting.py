"""Unit tests for repro.semigroups.rewriting."""

import pytest

from repro.errors import VerificationError
from repro.semigroups.presentation import Equation, Presentation
from repro.semigroups.rewriting import Derivation, find_derivation, word_problem
from repro.workloads.instances import (
    gap_instance,
    negative_instance,
    positive_chain_family,
    positive_instance,
)


class TestDerivation:
    def test_properties(self):
        derivation = Derivation((("A0",), ("A0", "A0"), ("0",)))
        assert derivation.source == ("A0",)
        assert derivation.target == ("0",)
        assert derivation.length == 2
        assert len(list(derivation.steps())) == 2

    def test_empty_rejected(self):
        with pytest.raises(VerificationError):
            Derivation(())

    def test_validate_accepts_legal_steps(self):
        presentation = positive_instance()
        derivation = Derivation((("A0",), ("A0", "A0"), ("0",)))
        derivation.validate(presentation)

    def test_validate_rejects_illegal_step(self):
        presentation = positive_instance()
        bogus = Derivation((("A0",), ("0",)))  # no single replacement does this
        with pytest.raises(VerificationError):
            bogus.validate(presentation)

    def test_describe(self):
        derivation = Derivation((("A0",), ("0",)))
        assert "A0 -> 0" in derivation.describe()


class TestFindDerivation:
    def test_source_equals_target(self):
        presentation = positive_instance()
        derivation = find_derivation(presentation, ("A0",), ("A0",))
        assert derivation is not None
        assert derivation.length == 0

    def test_positive_instance_solved(self):
        derivation = word_problem(positive_instance())
        assert derivation is not None
        assert derivation.source == ("A0",)
        assert derivation.target == ("0",)

    def test_derivation_is_validated(self):
        derivation = word_problem(positive_instance())
        derivation.validate(positive_instance())

    def test_negative_instance_unsolved(self):
        assert word_problem(negative_instance(), max_visited=5_000) is None

    def test_gap_instance_unsolved(self):
        assert word_problem(gap_instance(), max_visited=5_000) is None

    def test_max_length_blocks_necessary_growth(self):
        # The positive instance needs words of length 2; cap at 1.
        assert (
            find_derivation(positive_instance(), ("A0",), ("0",), max_length=1)
            is None
        )

    def test_visited_budget_respected(self):
        assert (
            find_derivation(positive_instance(), ("A0",), ("0",), max_visited=2)
            is None
        )

    @pytest.mark.parametrize("chain", [1, 2, 4])
    def test_chain_family_solved_with_growing_derivations(self, chain):
        presentation = positive_chain_family(chain)
        derivation = word_problem(presentation, max_length=chain + 4)
        assert derivation is not None
        assert derivation.length >= chain

    def test_zero_equations_alone_connect_zero_words(self):
        presentation = negative_instance()
        # 0.0 -> 0 is a legal zero-equation contraction.
        derivation = find_derivation(presentation, ("0", "0"), ("0",))
        assert derivation is not None
        assert derivation.length == 1

    def test_unreachable_word(self):
        presentation = negative_instance()
        # Nothing rewrites A0 alone under zero equations only.
        assert (
            find_derivation(presentation, ("A0",), ("0",), max_visited=1_000)
            is None
        )

"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.kernel.backend import join_backend_override, native_available
from repro.reduction.encode import ReductionEncoding, encode
from repro.relational.instance import Instance
from repro.relational.schema import Schema
from repro.relational.values import Const
from repro.workloads.garment import figure1_dependency, garment_database
from repro.workloads.instances import (
    gap_instance,
    negative_instance,
    positive_instance,
)


@pytest.fixture(params=["python", "native"])
def join_backend(request):
    """Run the requesting test under each join backend in turn.

    The differential suites opt in via
    ``pytestmark = pytest.mark.usefixtures("join_backend")`` — the same
    seeds that hold compiled ≡ legacy then also hold native ≡ python.
    When the native extension is not built, the native leg *skips
    visibly* (never silently passes on the fallback): a CI job that
    built the extension and still reports skips is misconfigured.
    """
    if request.param == "native" and not native_available():
        pytest.skip(
            "repro.kernel._native not built "
            "(python setup.py build_ext --inplace)"
        )
    with join_backend_override(request.param):
        yield request.param


@pytest.fixture
def binary_schema() -> Schema:
    return Schema(["FROM", "TO"])


@pytest.fixture
def ternary_schema() -> Schema:
    return Schema(["SUPPLIER", "STYLE", "SIZE"])


@pytest.fixture
def garments() -> Instance:
    return garment_database()


@pytest.fixture
def fig1():
    return figure1_dependency()


@pytest.fixture
def edge_instance(binary_schema: Schema) -> Instance:
    """A tiny binary instance: a path a -> b -> c."""
    a, b, c = Const("a"), Const("b"), Const("c")
    return Instance(binary_schema, [(a, b), (b, c)])


@pytest.fixture(scope="session")
def positive():
    return positive_instance()


@pytest.fixture(scope="session")
def negative():
    return negative_instance()


@pytest.fixture(scope="session")
def gap():
    return gap_instance()


@pytest.fixture(scope="session")
def positive_encoding(positive) -> ReductionEncoding:
    return encode(positive)


@pytest.fixture(scope="session")
def negative_encoding(negative) -> ReductionEncoding:
    return encode(negative)

"""Unit tests for repro.dependencies.classify."""

import pytest

from repro.dependencies.classify import (
    attribute_count,
    max_antecedent_count,
    summarize,
)
from repro.dependencies.parser import parse_td
from repro.relational.schema import Schema
from repro.workloads.garment import figure1_dependency, garment_eid


class TestCounts:
    def test_max_antecedent_count(self):
        deps = [
            parse_td("R(x, y) -> R(y, x)"),
            parse_td("R(x, y) & R(y, z) & R(z, w) -> R(x, w)"),
        ]
        assert max_antecedent_count(deps) == 3

    def test_max_antecedent_count_empty(self):
        assert max_antecedent_count([]) == 0

    def test_attribute_count(self):
        assert attribute_count([figure1_dependency()]) == 3

    def test_attribute_count_empty_rejected(self):
        with pytest.raises(ValueError):
            attribute_count([])

    def test_attribute_count_mixed_schemas_rejected(self):
        deps = [parse_td("R(x, y) -> R(y, x)"), figure1_dependency()]
        with pytest.raises(ValueError):
            attribute_count(deps)


class TestSummary:
    def test_summary_fields(self):
        deps = [figure1_dependency(), garment_eid()]
        summary = summarize(deps)
        assert summary.count == 2
        assert summary.attribute_count == 3
        assert summary.max_antecedents == 2
        assert summary.embedded_count == 2
        assert summary.full_count == 0
        assert summary.typed

    def test_summary_detects_untyped(self):
        deps = [parse_td("R(x, y) & R(y, z) -> R(x, z)")]
        assert not summarize(deps).typed

    def test_summary_counts_full(self):
        schema = Schema(["A", "B"])
        full = parse_td("R(x, y) & R(x, y2) -> R(x, y)", schema)
        assert summarize([full]).full_count == 1

    def test_str_mentions_key_numbers(self):
        text = str(summarize([figure1_dependency()]))
        assert "1 dependencies" in text
        assert "3 attributes" in text

    def test_reduction_encoding_summary(self, positive_encoding):
        """Paper claims (E3): at most 5 antecedents, 2n+2 attributes."""
        summary = summarize(positive_encoding.dependencies + [positive_encoding.d0])
        assert summary.max_antecedents == 5
        letters = len(positive_encoding.presentation.alphabet)
        assert summary.attribute_count == 2 * letters + 2
        assert summary.typed

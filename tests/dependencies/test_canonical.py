"""Tests for repro.dependencies.canonical."""

import pytest

from repro.dependencies.canonical import (
    canonical_key,
    canonicalize,
    dependency_fingerprint,
    query_fingerprint,
    query_key,
)
from repro.dependencies.eid import EmbeddedImplicationalDependency
from repro.dependencies.parser import parse_dependency, parse_td
from repro.relational.schema import Schema
from repro.workloads.generators import disguise, random_td


@pytest.fixture
def transitivity():
    return parse_td("R(x, y) & R(y, z) -> R(x, z)")


class TestDependencyFingerprint:
    def test_invariant_under_renaming(self, transitivity):
        renamed = parse_td("R(u, v) & R(v, w) -> R(u, w)")
        assert dependency_fingerprint(transitivity) == dependency_fingerprint(renamed)

    def test_invariant_under_antecedent_reordering(self, transitivity):
        reordered = parse_td("R(y, z) & R(x, y) -> R(x, z)")
        assert dependency_fingerprint(transitivity) == dependency_fingerprint(reordered)

    def test_invariant_under_disguise_of_random_tds(self):
        for seed in range(25):
            dependency = random_td(seed=seed)
            copy = disguise(dependency, seed=seed + 1)
            assert dependency_fingerprint(dependency) == dependency_fingerprint(copy)

    def test_distinguishes_different_dependencies(self, transitivity):
        symmetry = parse_td("R(x, y) -> R(y, x)")
        assert dependency_fingerprint(transitivity) != dependency_fingerprint(symmetry)

    def test_distinguishes_structurally_distinct_random_tds(self):
        fingerprints = {
            dependency_fingerprint(random_td(seed=seed, antecedents=4))
            for seed in range(20)
        }
        assert len(fingerprints) > 1

    def test_schema_is_part_of_the_key(self, transitivity):
        other_schema = parse_td(
            "R(x, y) & R(y, z) -> R(x, z)", Schema(["SRC", "DST"])
        )
        assert dependency_fingerprint(transitivity) != dependency_fingerprint(
            other_schema
        )

    def test_td_and_single_conclusion_eid_share_a_key(self, transitivity):
        eid = EmbeddedImplicationalDependency(
            transitivity.schema,
            transitivity.antecedents,
            (transitivity.conclusion,),
        )
        assert canonical_key(transitivity) == canonical_key(eid)

    def test_agrees_with_structural_equality(self):
        # Cross-validate the branch-and-prune labeling against the
        # exact permutation-based structural equality of TDs.
        tds = [random_td(seed=seed, antecedents=3) for seed in range(12)]
        tds += [disguise(td, seed=90 + index) for index, td in enumerate(tds[:6])]
        for left in tds:
            for right in tds:
                assert (
                    dependency_fingerprint(left) == dependency_fingerprint(right)
                ) == left.structurally_equal(right)

    def test_eid_conclusion_order_does_not_matter(self):
        schema = Schema(["A", "B"])
        one = parse_dependency("R(x, y) -> R(w, x) & R(w, y)", schema)
        two = parse_dependency("R(x, y) -> R(w, y) & R(w, x)", schema)
        assert dependency_fingerprint(one) == dependency_fingerprint(two)


class TestCanonicalize:
    def test_round_trip_is_structurally_equal(self, transitivity):
        canonical = canonicalize(transitivity)
        assert transitivity.structurally_equal(canonical)

    def test_disguised_copies_canonicalize_identically(self):
        for seed in range(10):
            dependency = random_td(seed=seed)
            copy = disguise(dependency, seed=seed + 7)
            assert canonicalize(dependency) == canonicalize(copy)

    def test_idempotent(self, transitivity):
        once = canonicalize(transitivity)
        assert canonicalize(once) == once


class TestQueryFingerprint:
    def test_invariant_under_premise_order_and_duplicates(self, transitivity):
        symmetry = parse_td("R(x, y) -> R(y, x)")
        target = parse_td("R(a, b) & R(b, c) -> R(a, c)")
        baseline = query_fingerprint([transitivity, symmetry], target)
        assert query_fingerprint([symmetry, transitivity], target) == baseline
        assert (
            query_fingerprint([symmetry, transitivity, symmetry], target) == baseline
        )

    def test_invariant_under_renaming_everywhere(self, transitivity):
        target = parse_td("R(a, b) & R(b, c) & R(c, d) -> R(a, d)")
        renamed_deps = [parse_td("R(p, q) & R(q, r) -> R(p, r)")]
        renamed_target = parse_td("R(k, l) & R(l, m) & R(m, n) -> R(k, n)")
        assert query_fingerprint([transitivity], target) == query_fingerprint(
            renamed_deps, renamed_target
        )

    def test_target_matters(self, transitivity):
        provable = parse_td("R(a, b) & R(b, c) -> R(a, c)")
        refutable = parse_td("R(a, b) -> R(b, a)")
        assert query_fingerprint([transitivity], provable) != query_fingerprint(
            [transitivity], refutable
        )

    def test_premises_matter(self, transitivity):
        target = parse_td("R(a, b) -> R(b, a)")
        assert query_fingerprint([transitivity], target) != query_fingerprint(
            [], target
        )

    def test_key_is_json_stable(self, transitivity):
        target = parse_td("R(a, b) -> R(b, a)")
        key = query_key([transitivity], target)
        assert key == query_key([transitivity], target)

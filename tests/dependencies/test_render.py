"""Unit tests for repro.dependencies.render."""

from repro.dependencies.diagram import diagram_of
from repro.dependencies.render import render_ascii, render_dot
from repro.workloads.garment import figure1_dependency


class TestAscii:
    def test_contains_nodes_and_edges(self):
        text = render_ascii(diagram_of(figure1_dependency()))
        assert "nodes: 1, 2, *" in text
        assert "--SUPPLIER--" in text
        assert "--STYLE--" in text
        assert "--SIZE--" in text

    def test_title_rendered_with_underline(self):
        text = render_ascii(diagram_of(figure1_dependency()), "Figure 1")
        lines = text.splitlines()
        assert lines[0] == "Figure 1"
        assert lines[1] == "=" * len("Figure 1")

    def test_deterministic(self):
        diagram = diagram_of(figure1_dependency())
        assert render_ascii(diagram) == render_ascii(diagram)

    def test_edgeless_diagram_notes_independence(self):
        from repro.dependencies.parser import parse_td

        diagram = diagram_of(parse_td("R(a, b) -> R(c, d)"))
        assert "none" in render_ascii(diagram)


class TestDot:
    def test_valid_graph_structure(self):
        dot = render_dot(diagram_of(figure1_dependency()), "fig1")
        assert dot.startswith("graph fig1 {")
        assert dot.rstrip().endswith("}")

    def test_star_node_doubled(self):
        dot = render_dot(diagram_of(figure1_dependency()))
        assert "doublecircle" in dot

    def test_edges_labelled(self):
        dot = render_dot(diagram_of(figure1_dependency()))
        assert 'label="SUPPLIER"' in dot

    def test_identifier_sanitised(self):
        dot = render_dot(diagram_of(figure1_dependency()), "D1[A0.A0=0]")
        first_line = dot.splitlines()[0]
        assert "[" not in first_line
        assert "=" not in first_line

    def test_identifier_leading_digit_prefixed(self):
        dot = render_dot(diagram_of(figure1_dependency()), "1abc")
        assert dot.startswith("graph g_1abc")

"""Unit tests for repro.dependencies.template."""

import pytest

from repro.dependencies.template import TemplateDependency, Variable, is_variable
from repro.errors import ArityError, DependencyError, TypingError
from repro.relational.instance import Instance
from repro.relational.schema import Schema
from repro.relational.values import Const


@pytest.fixture
def schema():
    return Schema(["A", "B", "C"])


def make_fig1(schema):
    a, b, c = Variable("a"), Variable("b"), Variable("c")
    b2, c2, a_star = Variable("b2"), Variable("c2"), Variable("a*")
    return TemplateDependency(
        schema, [(a, b, c), (a, b2, c2)], (a_star, b, c2)
    )


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_empty_name_rejected(self):
        with pytest.raises(DependencyError):
            Variable("")

    def test_is_variable(self):
        assert is_variable(Variable("x"))
        assert not is_variable("x")
        assert not is_variable(Const("x"))


class TestConstruction:
    def test_basic(self, schema):
        td = make_fig1(schema)
        assert len(td.antecedents) == 2
        assert len(td.conclusion) == 3

    def test_no_antecedents_rejected(self, schema):
        v = [Variable(f"v{i}") for i in range(3)]
        with pytest.raises(DependencyError):
            TemplateDependency(schema, [], tuple(v))

    def test_wrong_arity_rejected(self, schema):
        v = Variable("v")
        with pytest.raises(ArityError):
            TemplateDependency(schema, [(v, v)], (v, v, v))

    def test_non_variable_term_rejected(self, schema):
        v = Variable("v")
        with pytest.raises(DependencyError):
            TemplateDependency(schema, [(v, v, "oops")], (v, v, v))


class TestStructure:
    def test_universal_variables(self, schema):
        td = make_fig1(schema)
        names = {variable.name for variable in td.universal_variables()}
        assert names == {"a", "b", "c", "b2", "c2"}

    def test_existential_variables(self, schema):
        td = make_fig1(schema)
        names = {variable.name for variable in td.existential_variables()}
        assert names == {"a*"}

    def test_conclusions_tuple_matches_eid_protocol(self, schema):
        td = make_fig1(schema)
        assert td.conclusions == (td.conclusion,)

    def test_column_of(self, schema):
        td = make_fig1(schema)
        assert td.column_of(Variable("b")) == 1

    def test_column_of_unknown_variable(self, schema):
        td = make_fig1(schema)
        with pytest.raises(DependencyError):
            td.column_of(Variable("zzz"))


class TestClassification:
    def test_embedded(self, schema):
        td = make_fig1(schema)
        assert td.is_embedded()
        assert not td.is_full()

    def test_full(self, schema):
        a, b, c, b2 = (Variable(n) for n in "a b c b2".split())
        td = TemplateDependency(schema, [(a, b, c), (a, b2, c)], (a, b2, c))
        assert td.is_full()

    def test_typed(self, schema):
        assert make_fig1(schema).is_typed()

    def test_untyped_detected(self):
        schema = Schema(["A", "B"])
        x, y, z = Variable("x"), Variable("y"), Variable("z")
        td = TemplateDependency(schema, [(x, y), (y, z)], (x, z))
        assert not td.is_typed()
        with pytest.raises(TypingError):
            td.validate_typed()

    def test_trivial_conclusion_is_antecedent(self, schema):
        a, b, c = Variable("a"), Variable("b"), Variable("c")
        td = TemplateDependency(schema, [(a, b, c)], (a, b, c))
        assert td.is_trivial()

    def test_trivial_via_existentials(self, schema):
        a, b, c = Variable("a"), Variable("b"), Variable("c")
        star = Variable("s*")
        td = TemplateDependency(schema, [(a, b, c)], (star, b, c))
        assert td.is_trivial()  # map s* to a

    def test_nontrivial(self, schema):
        assert not make_fig1(schema).is_trivial()


class TestSemantics:
    def test_holds_in_satisfying_instance(self, schema):
        td = make_fig1(schema)
        a1, b1, c1 = Const("a1"), Const("b1"), Const("c1")
        instance = Instance(schema, [(a1, b1, c1)])
        assert td.holds_in(instance)  # single row: conclusion = that row

    def test_violation_found(self, schema):
        td = make_fig1(schema)
        a1 = Const("a1")
        b1, b2 = Const("b1"), Const("b2")
        c1, c2 = Const("c1"), Const("c2")
        instance = Instance(schema, [(a1, b1, c1), (a1, b2, c2)])
        witness = td.find_violation(instance)
        assert witness is not None
        # The violated match binds b to b1 and c2 to c2 (some orientation).
        assert set(witness) <= td.universal_variables()

    def test_empty_instance_vacuously_satisfies(self, schema):
        assert make_fig1(schema).holds_in(Instance(schema))

    def test_holds_after_adding_witness(self, schema):
        td = make_fig1(schema)
        a1, a2 = Const("a1"), Const("a2")
        b1, b2 = Const("b1"), Const("b2")
        c1, c2 = Const("c1"), Const("c2")
        instance = Instance(
            schema,
            [(a1, b1, c1), (a1, b2, c2), (a2, b1, c2), (a2, b2, c1)],
        )
        assert td.holds_in(instance)


class TestFreeze:
    def test_freeze_shapes(self, schema):
        td = make_fig1(schema)
        frozen, assignment = td.freeze()
        assert len(frozen) == 2
        assert set(assignment) == td.universal_variables()

    def test_freeze_is_deterministic(self, schema):
        td = make_fig1(schema)
        first, __ = td.freeze()
        second, __ = td.freeze()
        assert first == second

    def test_frozen_constants_distinct(self, schema):
        td = make_fig1(schema)
        __, assignment = td.freeze()
        assert len(set(assignment.values())) == len(assignment)

    def test_freeze_with_fresh_uses_labelled_nulls(self, schema):
        """Regression: ``freeze(fresh=...)`` used to silently discard the
        factory and hand back frozen constants."""
        from repro.relational.values import LabeledNull, NullFactory

        td = make_fig1(schema)
        frozen, assignment = td.freeze(fresh=NullFactory())
        assert set(assignment) == td.universal_variables()
        assert all(
            isinstance(value, LabeledNull) for value in assignment.values()
        )
        assert len(set(assignment.values())) == len(assignment)  # distinct
        for row in frozen:
            assert all(isinstance(value, LabeledNull) for value in row)
        # The nulls really come from the caller's factory (labels advance).
        factory = NullFactory(start=100)
        __, null_assignment = td.freeze(fresh=factory)
        assert {value.label for value in null_assignment.values()} == set(
            range(100, 100 + len(null_assignment))
        )

    def test_freeze_default_still_constants(self, schema):
        from repro.relational.values import Const

        td = make_fig1(schema)
        __, assignment = td.freeze()
        assert all(isinstance(value, Const) for value in assignment.values())


class TestTransformations:
    def test_rename(self, schema):
        td = make_fig1(schema)
        renamed = td.rename({Variable("a"): Variable("supplier")})
        assert Variable("supplier") in renamed.universal_variables()
        assert Variable("a") not in renamed.universal_variables()

    def test_structurally_equal_under_renaming(self, schema):
        td = make_fig1(schema)
        renamed = td.rename(
            {Variable("a"): Variable("zzz"), Variable("b2"): Variable("qqq")}
        )
        assert td.structurally_equal(renamed)

    def test_structurally_equal_under_reordering(self, schema):
        td = make_fig1(schema)
        reordered = TemplateDependency(
            schema, [td.antecedents[1], td.antecedents[0]], td.conclusion
        )
        assert td.structurally_equal(reordered)

    def test_structurally_different(self, schema):
        td = make_fig1(schema)
        a, b, c = Variable("a"), Variable("b"), Variable("c")
        other = TemplateDependency(schema, [(a, b, c)], (a, b, c))
        assert not td.structurally_equal(other)

    def test_canonical_idempotent(self, schema):
        td = make_fig1(schema)
        assert td.canonical().canonical() == td.canonical()

    def test_str_round_trips_via_parser(self, schema):
        from repro.dependencies.parser import parse_td

        td = make_fig1(schema)
        # a* is not a valid variable start in str() output? It is: name 'a*'.
        reparsed = parse_td(str(td), schema)
        assert reparsed.structurally_equal(td)

    def test_equality_and_hash(self, schema):
        assert make_fig1(schema) == make_fig1(schema)
        assert hash(make_fig1(schema)) == hash(make_fig1(schema))

"""Unit tests for repro.dependencies.eid."""

import pytest

from repro.dependencies.eid import EmbeddedImplicationalDependency, td_as_eid
from repro.dependencies.template import TemplateDependency, Variable
from repro.errors import DependencyError
from repro.relational.instance import Instance
from repro.relational.schema import Schema
from repro.relational.values import Const
from repro.workloads.garment import garment_eid


@pytest.fixture
def schema():
    return Schema(["A", "B", "C"])


class TestConstruction:
    def test_paper_example(self):
        eid = garment_eid()
        assert len(eid.antecedents) == 2
        assert len(eid.conclusions) == 2
        assert eid.is_typed()

    def test_needs_antecedents(self, schema):
        v = tuple(Variable(f"v{i}") for i in range(3))
        with pytest.raises(DependencyError):
            EmbeddedImplicationalDependency(schema, [], [v])

    def test_needs_conclusions(self, schema):
        v = tuple(Variable(f"v{i}") for i in range(3))
        with pytest.raises(DependencyError):
            EmbeddedImplicationalDependency(schema, [v], [])


class TestStructure:
    def test_existential_variables(self):
        eid = garment_eid()
        assert {v.name for v in eid.existential_variables()} == {"a*"}

    def test_single_conclusion_is_td(self, schema):
        v = tuple(Variable(f"v{i}") for i in range(3))
        eid = EmbeddedImplicationalDependency(schema, [v], [v])
        assert eid.is_template_dependency()
        assert isinstance(eid.as_template_dependency(), TemplateDependency)

    def test_multi_conclusion_is_not_td(self):
        eid = garment_eid()
        assert not eid.is_template_dependency()
        with pytest.raises(DependencyError):
            eid.as_template_dependency()

    def test_split_produces_one_td_per_conclusion(self):
        split = garment_eid().split()
        assert len(split) == 2
        assert all(isinstance(td, TemplateDependency) for td in split)

    def test_td_as_eid_round_trip(self, schema):
        a, b, c = Variable("a"), Variable("b"), Variable("c")
        td = TemplateDependency(schema, [(a, b, c)], (a, b, c))
        eid = td_as_eid(td)
        assert eid.as_template_dependency() == td


class TestSemantics:
    def test_conjunction_stronger_than_split(self):
        """The EID requires ONE witness for both atoms; the split does not."""
        eid = garment_eid()
        schema = eid.schema
        s1, s2, s3 = Const("s1"), Const("s2"), Const("s3")
        dress, brief = Const("dress"), Const("brief")
        small, large = Const("small"), Const("large")
        # s1 supplies dress/small and brief/large; s2 covers dress/large
        # and s3 covers brief/small, so each split TD has a witness for
        # every match. But nobody supplies dress in BOTH sizes, so the
        # conjunction (one witness for both atoms) fails.
        instance = Instance(
            schema,
            [
                (s1, dress, small),
                (s1, brief, large),
                (s2, dress, large),
                (s3, brief, small),
            ],
        )
        assert all(td.holds_in(instance) for td in eid.split())
        assert not eid.holds_in(instance)

    def test_holds_with_common_witness(self):
        eid = garment_eid()
        schema = eid.schema
        s1 = Const("s1")
        dress = Const("dress")
        small, large = Const("small"), Const("large")
        # One supplier of one style in two sizes: every antecedent match
        # has s1 itself as the common witness for both conclusion atoms.
        instance = Instance(schema, [(s1, dress, small), (s1, dress, large)])
        assert eid.holds_in(instance)

    def test_empty_instance_vacuous(self):
        eid = garment_eid()
        assert eid.holds_in(Instance(eid.schema))

    def test_find_violation_returns_universal_binding(self):
        eid = garment_eid()
        schema = eid.schema
        s1 = Const("s1")
        dress, brief = Const("dress"), Const("brief")
        small, large = Const("small"), Const("large")
        # s1 supplies dress/small and brief/large; no common witness for
        # "dress in both sizes" exists, so the EID is violated.
        instance = Instance(schema, [(s1, dress, small), (s1, brief, large)])
        witness = eid.find_violation(instance)
        assert witness is not None
        assert set(witness) <= eid.universal_variables()



class TestDisplay:
    def test_str_shows_conjunction(self):
        text = str(garment_eid())
        assert text.count("->") == 1
        assert text.split("->")[1].count("R(") == 2

    def test_equality_and_hash(self):
        assert garment_eid() == garment_eid()
        assert hash(garment_eid()) == hash(garment_eid())

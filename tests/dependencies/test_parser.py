"""Unit tests for repro.dependencies.parser."""

import pytest

from repro.dependencies.eid import EmbeddedImplicationalDependency
from repro.dependencies.parser import parse_dependency, parse_td
from repro.dependencies.template import TemplateDependency
from repro.errors import ParseError
from repro.relational.schema import Schema


class TestBasicParsing:
    def test_simple_td(self):
        td = parse_td("R(x, y) & R(y, z) -> R(x, z)")
        assert isinstance(td, TemplateDependency)
        assert len(td.antecedents) == 2
        assert td.schema.arity == 2

    def test_fat_arrow(self):
        td = parse_td("R(x, y) => R(y, x)")
        assert len(td.antecedents) == 1

    def test_whitespace_insensitive(self):
        td = parse_td("  R( x ,y )&R(y,z)->R( x , z )  ")
        assert len(td.antecedents) == 2

    def test_primes_and_stars_in_names(self):
        td = parse_td("R(a, b, c) & R(a, b', c') -> R(a*, b, c')")
        names = {v.name for v in td.variables()}
        assert {"a", "b'", "c'", "a*"} <= names

    def test_existential_detected(self):
        td = parse_td("R(x, y) -> R(x, z)")
        assert {v.name for v in td.existential_variables()} == {"z"}

    def test_default_schema_names(self):
        td = parse_td("R(x, y, z) -> R(x, y, z)")
        assert td.schema.attributes == ("A1", "A2", "A3")

    def test_explicit_schema(self):
        schema = Schema(["FROM", "TO"])
        td = parse_td("R(x, y) -> R(y, x)", schema)
        assert td.schema is schema


class TestEidParsing:
    def test_multi_atom_conclusion_is_eid(self):
        dep = parse_dependency("R(a, b) & R(a, c) -> R(d, b) & R(d, c)")
        assert isinstance(dep, EmbeddedImplicationalDependency)
        assert len(dep.conclusions) == 2

    def test_parse_td_rejects_eid(self):
        with pytest.raises(ParseError):
            parse_td("R(a, b) -> R(c, a) & R(c, b)")

    def test_single_atom_dependency_is_td(self):
        dep = parse_dependency("R(a, b) -> R(b, a)")
        assert isinstance(dep, TemplateDependency)


class TestErrors:
    def test_missing_arrow(self):
        with pytest.raises(ParseError):
            parse_td("R(x, y) & R(y, z)")

    def test_bad_atom(self):
        with pytest.raises(ParseError):
            parse_td("R(x, y & R(y, z) -> R(x, z)")

    def test_mixed_relation_names(self):
        with pytest.raises(ParseError):
            parse_td("R(x, y) & S(y, z) -> R(x, z)")

    def test_mixed_relation_across_arrow(self):
        with pytest.raises(ParseError):
            parse_td("R(x, y) -> S(y, x)")

    def test_inconsistent_arity(self):
        with pytest.raises(ParseError):
            parse_td("R(x, y) -> R(x, y, z)")

    def test_schema_arity_mismatch(self):
        with pytest.raises(ParseError):
            parse_td("R(x, y) -> R(y, x)", Schema(["A", "B", "C"]))

    def test_bad_variable_name(self):
        with pytest.raises(ParseError):
            parse_td("R(x, 1bad) -> R(x, x)")

    def test_empty_variable(self):
        with pytest.raises(ParseError):
            parse_td("R(x, ) -> R(x, x)")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "R(x, y) & R(y, z) -> R(x, z)",
            "R(a, b, c) & R(a, b', c') -> R(a*, b, c')",
            "R(u, v) -> R(v, w)",
        ],
    )
    def test_str_then_parse(self, text):
        td = parse_td(text)
        assert parse_td(str(td), td.schema).structurally_equal(td)

"""Unit tests for repro.dependencies.diagram (the Figure 1 notation)."""

import pytest

from repro.dependencies.diagram import CONCLUSION, Diagram, DiagramEdge, diagram_of
from repro.dependencies.parser import parse_td
from repro.errors import DiagramError, TypingError
from repro.relational.schema import Schema
from repro.workloads.garment import figure1_dependency


class TestDiagramEdge:
    def test_make_normalises_endpoint_order(self):
        assert DiagramEdge.make("2", "1", "A") == DiagramEdge.make("1", "2", "A")

    def test_make_accepts_ints(self):
        edge = DiagramEdge.make(1, CONCLUSION, "A")
        assert edge.endpoints() == ("*", "1")

    def test_str(self):
        assert "--A--" in str(DiagramEdge.make("1", "2", "A"))


class TestDiagramConstruction:
    def test_figure1_shape(self):
        diagram = diagram_of(figure1_dependency())
        assert diagram.antecedent_count == 2
        assert diagram.node_labels() == ("1", "2", "*")
        assert len(diagram.edges) == 3  # SUPPLIER 1-2, STYLE 1-*, SIZE 2-*

    def test_unknown_attribute_rejected(self):
        schema = Schema(["A", "B"])
        with pytest.raises(DiagramError):
            Diagram(schema, 1, [DiagramEdge.make("1", "*", "Z")])

    def test_unknown_node_rejected(self):
        schema = Schema(["A", "B"])
        with pytest.raises(DiagramError):
            Diagram(schema, 1, [DiagramEdge.make("1", "7", "A")])

    def test_zero_antecedents_rejected(self):
        with pytest.raises(DiagramError):
            Diagram(Schema(["A"]), 0, [])

    def test_untyped_dependency_has_no_diagram(self):
        transitivity = parse_td("R(x, y) & R(y, z) -> R(x, z)")
        with pytest.raises(TypingError):
            diagram_of(transitivity)


class TestRoundTrip:
    def test_figure1_round_trips(self):
        fig1 = figure1_dependency()
        rebuilt = diagram_of(fig1).to_dependency()
        assert rebuilt.structurally_equal(fig1)

    def test_round_trip_preserves_existentials(self):
        fig1 = figure1_dependency()
        rebuilt = diagram_of(fig1).to_dependency()
        assert len(rebuilt.existential_variables()) == 1

    @pytest.mark.parametrize("seed", range(8))
    def test_random_typed_dependencies_round_trip(self, seed):
        from repro.workloads.generators import random_td

        td = random_td(arity=3, antecedents=3, seed=seed)
        rebuilt = diagram_of(td).to_dependency()
        assert rebuilt.structurally_equal(td)

    def test_dependency_with_no_shared_variables(self):
        td = parse_td("R(a, b) -> R(c, d)")
        diagram = diagram_of(td)
        assert len(diagram.edges) == 0
        rebuilt = diagram.to_dependency()
        assert rebuilt.structurally_equal(td)

    def test_transitive_edges_equivalent(self):
        """A clique of edges and its spanning tree denote the same TD."""
        schema = Schema(["A"])
        full = Diagram(
            schema,
            3,
            [
                DiagramEdge.make("1", "2", "A"),
                DiagramEdge.make("2", "3", "A"),
                DiagramEdge.make("1", "3", "A"),
            ],
        )
        spanning = Diagram(
            schema,
            3,
            [DiagramEdge.make("1", "2", "A"), DiagramEdge.make("2", "3", "A")],
        )
        assert full.to_dependency().structurally_equal(spanning.to_dependency())


class TestReducedEdges:
    def test_reduced_removes_implied_edge(self):
        schema = Schema(["A"])
        full = Diagram(
            schema,
            3,
            [
                DiagramEdge.make("1", "2", "A"),
                DiagramEdge.make("2", "3", "A"),
                DiagramEdge.make("1", "3", "A"),
            ],
        )
        assert len(full.reduced_edges()) == 2

    def test_reduced_keeps_components(self):
        diagram = diagram_of(figure1_dependency())
        reduced = Diagram(diagram.schema, diagram.antecedent_count, diagram.reduced_edges())
        assert reduced.to_dependency().structurally_equal(diagram.to_dependency())


class TestEqualityAndDisplay:
    def test_equal_diagrams(self):
        assert diagram_of(figure1_dependency()) == diagram_of(figure1_dependency())

    def test_hashable(self):
        d = diagram_of(figure1_dependency())
        assert len({d, diagram_of(figure1_dependency())}) == 1

    def test_repr(self):
        assert "Diagram" in repr(diagram_of(figure1_dependency()))

"""Tests for the InferenceService facade and the chase scheduler."""

import pytest

from repro.chase.budget import Budget
from repro.chase.engine import ChaseVariant
from repro.chase.implication import InferenceStatus, implies_all
from repro.service import (
    InferenceService,
    QueryTask,
    ResultCache,
    divide_budget,
    run_pool,
    run_serial,
)
from repro.dependencies.parser import parse_td
from repro.workloads.generators import inference_workload


@pytest.fixture
def workload():
    return inference_workload(queries=24, seed=3)


class TestRunBatchEquivalence:
    def test_matches_serial_implies_all(self, workload):
        dependencies, targets = workload
        budget = Budget(max_steps=2_000)
        serial = implies_all(dependencies, targets, budget=budget)
        report = InferenceService().run_batch(dependencies, targets, budget=budget)
        assert [o.status for o in report.outcomes] == [o.status for o in serial]

    def test_items_align_with_submission_order(self, workload):
        dependencies, targets = workload
        report = InferenceService().run_batch(dependencies, targets)
        assert [item.index for item in report.items] == list(range(len(targets)))
        for item, target in zip(report.items, targets):
            assert item.target.schema == target.schema

    def test_semi_naive_variant_agrees(self, workload):
        dependencies, targets = workload
        budget = Budget(max_steps=2_000)
        standard = InferenceService().run_batch(dependencies, targets, budget=budget)
        semi = InferenceService(variant=ChaseVariant.SEMI_NAIVE).run_batch(
            dependencies, targets, budget=budget
        )
        assert [o.status for o in semi.outcomes] == [
            o.status for o in standard.outcomes
        ]


class TestDedupAndCache:
    def test_disguised_duplicates_chase_once(self, workload):
        dependencies, targets = workload
        report = InferenceService().run_batch(dependencies, targets)
        stats = report.stats
        assert stats.submitted == len(targets)
        assert stats.deduplicated > 0
        assert stats.executed + stats.deduplicated + stats.cache_hits == len(targets)
        assert stats.executed < len(targets)

    def test_warm_second_batch_is_all_hits(self, workload):
        dependencies, targets = workload
        service = InferenceService()
        service.run_batch(dependencies, targets)
        warm = service.run_batch(dependencies, targets)
        assert warm.stats.cache_hits == len(targets)
        assert warm.stats.executed == 0

    def test_unknown_retries_with_bigger_budget(self):
        transitivity = parse_td("R(x, y) & R(y, z) -> R(x, z)")
        target = parse_td("R(a, b) & R(b, c) & R(c, d) & R(d, e) -> R(a, e)")
        service = InferenceService()
        starved = Budget(max_steps=1)
        first = service.run_batch([transitivity], [target], budget=starved)
        assert first.outcomes[0].status is InferenceStatus.UNKNOWN
        # Same budget: the UNKNOWN is served from cache.
        again = service.run_batch([transitivity], [target], budget=starved)
        assert again.stats.cache_hits == 1
        # Bigger budget: the entry is stale, the query re-runs and is decided.
        bigger = service.run_batch(
            [transitivity], [target], budget=Budget(max_steps=500)
        )
        assert bigger.stats.cache_hits == 0
        assert bigger.stats.executed == 1
        assert bigger.outcomes[0].status is InferenceStatus.PROVED

    def test_submit_returns_matching_fingerprints_for_duplicates(self):
        transitivity = parse_td("R(x, y) & R(y, z) -> R(x, z)")
        target = parse_td("R(a, b) & R(b, c) -> R(a, c)")
        disguised = parse_td("R(q, r) & R(p, q) -> R(p, r)")
        service = InferenceService()
        assert service.submit([transitivity], target) == service.submit(
            [transitivity], disguised
        )


class TestWorkerPool:
    def test_pool_matches_serial(self):
        dependencies, targets = inference_workload(queries=10, seed=11)
        budget = Budget(max_steps=2_000)
        serial = InferenceService().run_batch(dependencies, targets, budget=budget)
        pooled = InferenceService(workers=2).run_batch(
            dependencies, targets, budget=budget
        )
        assert [o.status for o in pooled.outcomes] == [
            o.status for o in serial.outcomes
        ]

    def test_race_variants_matches_serial(self):
        dependencies, targets = inference_workload(queries=8, seed=5)
        budget = Budget(max_steps=2_000)
        serial = InferenceService().run_batch(dependencies, targets, budget=budget)
        raced = InferenceService(workers=2, race_variants=True).run_batch(
            dependencies, targets, budget=budget
        )
        assert [o.status for o in raced.outcomes] == [
            o.status for o in serial.outcomes
        ]

    def test_pooled_proof_traces_replay(self):
        from repro.chase.engine import replay
        from repro.chase.implication import conclusion_satisfied

        transitivity = parse_td("R(x, y) & R(y, z) -> R(x, z)")
        target = parse_td("R(a, b) & R(b, c) & R(c, d) -> R(a, d)")
        report = InferenceService(workers=1).run_batch([transitivity], [target])
        outcome = report.outcomes[0]
        assert outcome.status is InferenceStatus.PROVED
        start, frozen = outcome.target.freeze()
        final = replay(start, outcome.chase_result.steps, verify=True)
        assert conclusion_satisfied(final, outcome.target, frozen)


class TestScheduler:
    def test_run_serial_races_variants_until_decisive(self):
        transitivity = parse_td("R(x, y) & R(y, z) -> R(x, z)")
        target = parse_td("R(a, b) & R(b, c) -> R(a, c)")
        task = QueryTask(slot=0, dependencies=(transitivity,), target=target)
        results = run_serial(
            [task],
            Budget(max_steps=500),
            (ChaseVariant.STANDARD, ChaseVariant.SEMI_NAIVE),
        )
        assert results[0].status is InferenceStatus.PROVED

    def test_run_pool_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            run_pool([], Budget(), 0, (ChaseVariant.STANDARD,))

    def test_divide_budget(self):
        shared = Budget(max_steps=100, max_rows=10, max_seconds=8.0)
        per_query = divide_budget(shared, 4)
        assert per_query.max_steps == 25
        assert per_query.max_rows == 2
        assert per_query.max_seconds == 2.0

    def test_divide_budget_floors_at_one(self):
        per_query = divide_budget(Budget(max_steps=2, max_rows=None), 10)
        assert per_query.max_steps == 1
        assert per_query.max_rows is None

    def test_share_budget_divides_across_misses(self):
        transitivity = parse_td("R(x, y) & R(y, z) -> R(x, z)")
        targets = [
            parse_td("R(a, b) & R(b, c) & R(c, d) & R(d, e) -> R(a, e)"),
            parse_td("R(p, q) & R(q, r) & R(r, s) & R(s, t) & R(t, u) -> R(p, u)"),
        ]
        # 4 whole-batch steps over 2 misses = 2 steps each: both starve.
        shared = InferenceService(share_budget=True)
        starved = shared.run_batch(
            [transitivity], targets, budget=Budget(max_steps=4)
        )
        assert all(
            o.status is InferenceStatus.UNKNOWN for o in starved.outcomes
        )
        # A generous per-query budget decides both.
        per_query = InferenceService()
        decided = per_query.run_batch(
            [transitivity], targets, budget=Budget(max_steps=200)
        )
        assert all(o.status is InferenceStatus.PROVED for o in decided.outcomes)

    def test_share_budget_unknowns_hit_cache_on_identical_reruns(self):
        diverging = parse_td("R(x, y) -> R(y, z)")
        targets = [
            parse_td("R(a, b) -> R(b, a)"),
            parse_td("R(p, q) -> R(q, q)"),
        ]
        service = InferenceService(share_budget=True)
        budget = Budget(max_steps=10)
        first = service.run_batch([diverging], targets, budget=budget)
        assert all(o.status is InferenceStatus.UNKNOWN for o in first.outcomes)
        # Identical re-run: the cached UNKNOWNs were computed under the
        # same division, so they must be served, not eternally re-chased.
        second = service.run_batch([diverging], targets, budget=budget)
        assert second.stats.cache_hits == len(targets)
        assert second.stats.executed == 0


class TestCliBatch:
    @pytest.fixture
    def files(self, tmp_path):
        deps = tmp_path / "deps.txt"
        deps.write_text("R(x, y) & R(y, z) -> R(x, z)\n")
        targets = tmp_path / "targets.txt"
        targets.write_text(
            "R(a, b) & R(b, c) -> R(a, c)\n"
            "R(u, v) & R(v, w) -> R(u, w)\n"
            "R(a, b) -> R(b, a)\n"
        )
        return str(deps), str(targets)

    def test_batch_table_and_exit_code(self, files, capsys):
        from repro.cli import EXIT_DISPROVED, main

        deps, targets = files
        code = main(["batch", "--deps", deps, "--targets", targets])
        assert code == EXIT_DISPROVED  # one refuted target dominates
        output = capsys.readouterr().out
        assert "proved" in output and "disproved" in output
        assert "dedup" in output  # the disguised duplicate was not re-chased
        assert "cache" in output

    def test_batch_all_proved_exit_code(self, tmp_path, capsys):
        from repro.cli import EXIT_PROVED, main

        deps = tmp_path / "deps.txt"
        deps.write_text("R(x, y) & R(y, z) -> R(x, z)\n")
        targets = tmp_path / "targets.txt"
        targets.write_text("R(a, b) & R(b, c) -> R(a, c)\n")
        code = main(["batch", "--deps", str(deps), "--targets", str(targets)])
        assert code == EXIT_PROVED

    def test_batch_empty_targets_is_usage_error(self, tmp_path, capsys):
        from repro.cli import EXIT_USAGE, main

        deps = tmp_path / "deps.txt"
        deps.write_text("R(x, y) & R(y, z) -> R(x, z)\n")
        targets = tmp_path / "targets.txt"
        targets.write_text("# only comments, no targets\n")
        code = main(["batch", "--deps", str(deps), "--targets", str(targets)])
        assert code == EXIT_USAGE
        assert "no targets" in capsys.readouterr().err

    def test_batch_negative_workers_is_usage_error(self, files, capsys):
        from repro.cli import EXIT_USAGE, main

        deps, targets = files
        code = main(
            ["batch", "--deps", deps, "--targets", targets, "--workers", "-1"]
        )
        assert code == EXIT_USAGE
        assert "--workers" in capsys.readouterr().err

    def test_batch_disk_cache_warms_across_invocations(self, files, tmp_path, capsys):
        from repro.cli import main

        deps, targets = files
        cache = str(tmp_path / "cache.jsonl")
        main(["batch", "--deps", deps, "--targets", targets, "--cache", cache])
        capsys.readouterr()
        main(["batch", "--deps", deps, "--targets", targets, "--cache", cache])
        output = capsys.readouterr().out
        assert "3 cache hit(s)" in output

"""Tests for the InferenceService facade and the chase scheduler."""

import pytest

from repro.chase.budget import Budget
from repro.chase.engine import ChaseVariant
from repro.chase.implication import InferenceStatus, implies_all
from repro.service import (
    InferenceService,
    QueryTask,
    RACING_VARIANTS,
    ResultCache,
    WorkerPool,
    divide_budget,
    run_pool,
    run_serial,
    serial_run,
)
from repro.dependencies.parser import parse_td
from repro.workloads.generators import inference_workload


@pytest.fixture
def workload():
    return inference_workload(queries=24, seed=3)


class TestRunBatchEquivalence:
    def test_matches_serial_implies_all(self, workload):
        dependencies, targets = workload
        budget = Budget(max_steps=2_000)
        serial = implies_all(dependencies, targets, budget=budget)
        report = InferenceService().run_batch(dependencies, targets, budget=budget)
        assert [o.status for o in report.outcomes] == [o.status for o in serial]

    def test_items_align_with_submission_order(self, workload):
        dependencies, targets = workload
        report = InferenceService().run_batch(dependencies, targets)
        assert [item.index for item in report.items] == list(range(len(targets)))
        for item, target in zip(report.items, targets):
            assert item.target.schema == target.schema

    def test_semi_naive_variant_agrees(self, workload):
        dependencies, targets = workload
        budget = Budget(max_steps=2_000)
        standard = InferenceService().run_batch(dependencies, targets, budget=budget)
        semi = InferenceService(variant=ChaseVariant.SEMI_NAIVE).run_batch(
            dependencies, targets, budget=budget
        )
        assert [o.status for o in semi.outcomes] == [
            o.status for o in standard.outcomes
        ]


class TestDedupAndCache:
    def test_disguised_duplicates_chase_once(self, workload):
        dependencies, targets = workload
        report = InferenceService().run_batch(dependencies, targets)
        stats = report.stats
        assert stats.submitted == len(targets)
        assert stats.deduplicated > 0
        assert stats.executed + stats.deduplicated + stats.cache_hits == len(targets)
        assert stats.executed < len(targets)

    def test_warm_second_batch_is_all_hits(self, workload):
        dependencies, targets = workload
        service = InferenceService()
        service.run_batch(dependencies, targets)
        warm = service.run_batch(dependencies, targets)
        assert warm.stats.cache_hits == len(targets)
        assert warm.stats.executed == 0

    def test_unknown_retries_with_bigger_budget(self):
        transitivity = parse_td("R(x, y) & R(y, z) -> R(x, z)")
        target = parse_td("R(a, b) & R(b, c) & R(c, d) & R(d, e) -> R(a, e)")
        service = InferenceService()
        starved = Budget(max_steps=1)
        first = service.run_batch([transitivity], [target], budget=starved)
        assert first.outcomes[0].status is InferenceStatus.UNKNOWN
        # Same budget: the UNKNOWN is served from cache.
        again = service.run_batch([transitivity], [target], budget=starved)
        assert again.stats.cache_hits == 1
        # Bigger budget: the entry is stale; the suspended chase is
        # resumed from its checkpoint (not re-run from scratch) and
        # decided.
        bigger = service.run_batch(
            [transitivity], [target], budget=Budget(max_steps=500)
        )
        assert bigger.stats.cache_hits == 0
        assert bigger.stats.resumed == 1
        assert bigger.stats.executed == 0
        assert bigger.outcomes[0].status is InferenceStatus.PROVED

    def test_unknown_retry_without_checkpoints_re_runs(self):
        transitivity = parse_td("R(x, y) & R(y, z) -> R(x, z)")
        target = parse_td("R(a, b) & R(b, c) & R(c, d) & R(d, e) -> R(a, e)")
        service = InferenceService(checkpoints=False)
        first = service.run_batch(
            [transitivity], [target], budget=Budget(max_steps=1)
        )
        assert first.outcomes[0].status is InferenceStatus.UNKNOWN
        bigger = service.run_batch(
            [transitivity], [target], budget=Budget(max_steps=500)
        )
        assert bigger.stats.resumed == 0
        assert bigger.stats.executed == 1
        assert bigger.outcomes[0].status is InferenceStatus.PROVED

    def test_submit_returns_matching_fingerprints_for_duplicates(self):
        transitivity = parse_td("R(x, y) & R(y, z) -> R(x, z)")
        target = parse_td("R(a, b) & R(b, c) -> R(a, c)")
        disguised = parse_td("R(q, r) & R(p, q) -> R(p, r)")
        service = InferenceService()
        assert service.submit([transitivity], target) == service.submit(
            [transitivity], disguised
        )


class TestWorkerPool:
    def test_pool_matches_serial(self):
        dependencies, targets = inference_workload(queries=10, seed=11)
        budget = Budget(max_steps=2_000)
        serial = InferenceService().run_batch(dependencies, targets, budget=budget)
        with InferenceService(workers=2) as service:
            pooled = service.run_batch(dependencies, targets, budget=budget)
        assert [o.status for o in pooled.outcomes] == [
            o.status for o in serial.outcomes
        ]

    def test_race_variants_matches_serial(self):
        dependencies, targets = inference_workload(queries=8, seed=5)
        budget = Budget(max_steps=2_000)
        serial = InferenceService().run_batch(dependencies, targets, budget=budget)
        with InferenceService(workers=2, race_variants=True) as service:
            raced = service.run_batch(dependencies, targets, budget=budget)
        assert [o.status for o in raced.outcomes] == [
            o.status for o in serial.outcomes
        ]

    def test_pooled_proof_traces_replay(self):
        from repro.chase.engine import replay
        from repro.chase.implication import conclusion_satisfied

        transitivity = parse_td("R(x, y) & R(y, z) -> R(x, z)")
        target = parse_td("R(a, b) & R(b, c) & R(c, d) -> R(a, d)")
        with InferenceService(workers=1) as service:
            report = service.run_batch([transitivity], [target])
        outcome = report.outcomes[0]
        assert outcome.status is InferenceStatus.PROVED
        start, frozen = outcome.target.freeze()
        final = replay(start, outcome.chase_result.steps, verify=True)
        assert conclusion_satisfied(final, outcome.target, frozen)


class TestWorkerPoolLifecycle:
    @pytest.fixture
    def racing_tasks(self):
        transitivity = parse_td("R(x, y) & R(y, z) -> R(x, z)")
        targets = [
            parse_td("R(a, b) & R(b, c) -> R(a, c)"),
            parse_td("R(a, b) & R(b, c) & R(c, d) -> R(a, d)"),
        ]
        return [
            QueryTask(slot=index, dependencies=(transitivity,), target=target)
            for index, target in enumerate(targets)
        ]

    def test_pool_is_reused_across_batches(self, racing_tasks):
        with WorkerPool(1) as pool:
            first = pool.run(racing_tasks, Budget(max_steps=500), RACING_VARIANTS)
            # The worker processes survive between run() calls.
            second = pool.run(racing_tasks, Budget(max_steps=500), RACING_VARIANTS)
        for run in (first, second):
            assert all(
                run.outcomes[slot].status is InferenceStatus.PROVED
                for slot in (0, 1)
            )

    def test_raced_losers_for_decided_slots_are_skipped(self, racing_tasks):
        # One worker, two raced variants, decisive queries: dispatch is
        # variant-major, so by the time each SEMI_NAIVE payload comes up
        # its slot is decided by the STANDARD chase — it must be skipped,
        # not chased to budget exhaustion.
        with WorkerPool(1) as pool:
            run = pool.run(racing_tasks, Budget(max_steps=500), RACING_VARIANTS)
        assert run.skipped == len(racing_tasks)

    def test_undecided_slots_race_every_variant(self):
        diverging = parse_td("R(x, y) -> R(y, z)")
        task = QueryTask(
            slot=0,
            dependencies=(diverging,),
            target=parse_td("R(a, b) -> R(b, a)"),
        )
        with WorkerPool(1) as pool:
            run = pool.run([task], Budget(max_steps=3), RACING_VARIANTS)
        # Nothing decisive, so nothing skippable: both variants ran.
        assert run.outcomes[0].status is InferenceStatus.UNKNOWN
        assert run.skipped == 0

    def test_close_is_idempotent_and_pool_restartable(self, racing_tasks):
        pool = WorkerPool(1)
        first = pool.run(racing_tasks, Budget(max_steps=500), (ChaseVariant.STANDARD,))
        pool.close()
        pool.close()
        # A fresh set of workers is forked transparently after close().
        second = pool.run(racing_tasks, Budget(max_steps=500), (ChaseVariant.STANDARD,))
        pool.close()
        assert [o.status for o in first.outcomes.values()] == [
            o.status for o in second.outcomes.values()
        ]

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            WorkerPool(0)

    def test_dead_worker_is_contained_within_the_batch(self, racing_tasks):
        """A killed worker must not wedge OR fail the batch: the pool is
        rebuilt in place, lost payloads are re-dispatched, and every
        slot still gets a real verdict (a long-lived server depends on
        this)."""
        import os

        pool = WorkerPool(1).start()
        try:
            # Kill the worker out from under the executor.
            pool._pool.submit(os._exit, 13).exception(timeout=30)
            contained = pool.run(
                racing_tasks, Budget(max_steps=500), (ChaseVariant.STANDARD,)
            )
            assert contained.pool_restarts >= 1
            assert all(
                outcome.status is InferenceStatus.PROVED
                for outcome in contained.outcomes.values()
            )
            # The rebuilt pool persists: the next batch just works.
            recovered = pool.run(
                racing_tasks, Budget(max_steps=500), (ChaseVariant.STANDARD,)
            )
            assert recovered.pool_restarts == 0
            assert all(
                outcome.status is InferenceStatus.PROVED
                for outcome in recovered.outcomes.values()
            )
        finally:
            pool.close()

    def test_serial_run_counts_untried_variants_as_skipped(self):
        transitivity = parse_td("R(x, y) & R(y, z) -> R(x, z)")
        task = QueryTask(
            slot=0,
            dependencies=(transitivity,),
            target=parse_td("R(a, b) & R(b, c) -> R(a, c)"),
        )
        run = serial_run([task], Budget(max_steps=500), RACING_VARIANTS)
        assert run.outcomes[0].status is InferenceStatus.PROVED
        assert run.skipped == 1  # SEMI_NAIVE never needed

    def test_service_surfaces_skips_in_batch_stats(self):
        transitivity = parse_td("R(x, y) & R(y, z) -> R(x, z)")
        targets = [
            parse_td("R(a, b) & R(b, c) -> R(a, c)"),
            parse_td("R(a, b) & R(b, c) & R(c, d) -> R(a, d)"),
        ]
        with InferenceService(workers=1, race_variants=True) as service:
            report = service.run_batch(
                [transitivity], targets, budget=Budget(max_steps=500)
            )
        assert report.stats.executed == 2
        assert report.stats.skipped == 2
        assert "skipped" in report.stats.describe()

    def test_serial_race_arms_share_one_frozen_start(self):
        # Nothing decisive within the budget, so both race arms chase —
        # the second arm must reuse the first's FrozenStart (frozen
        # instance + intern table + goal plan) instead of rebuilding it.
        diverging = parse_td("R(x, y) -> R(y, z)")
        task = QueryTask(
            slot=0,
            dependencies=(diverging,),
            target=parse_td("R(a, b) -> R(b, a)"),
        )
        run = serial_run([task], Budget(max_steps=3), RACING_VARIANTS)
        assert run.outcomes[0].status is InferenceStatus.UNKNOWN
        assert run.start_reuses == 1

    def test_serial_decided_first_arm_reuses_nothing(self):
        transitivity = parse_td("R(x, y) & R(y, z) -> R(x, z)")
        task = QueryTask(
            slot=0,
            dependencies=(transitivity,),
            target=parse_td("R(a, b) & R(b, c) -> R(a, c)"),
        )
        run = serial_run([task], Budget(max_steps=500), RACING_VARIANTS)
        assert run.start_reuses == 0

    def test_pool_race_arms_share_frozen_starts(self):
        # One worker, undecidable-in-budget query: both raced payloads
        # land on the same worker, whose frozen-start memo serves the
        # second arm.
        diverging = parse_td("R(x, y) -> R(y, z)")
        task = QueryTask(
            slot=0,
            dependencies=(diverging,),
            target=parse_td("R(a, b) -> R(b, a)"),
        )
        with WorkerPool(1) as pool:
            run = pool.run([task], Budget(max_steps=3), RACING_VARIANTS)
        assert run.outcomes[0].status is InferenceStatus.UNKNOWN
        assert run.start_reuses == 1

    def test_service_surfaces_start_reuses_in_batch_stats(self):
        diverging = parse_td("R(x, y) -> R(y, z)")
        with InferenceService(race_variants=True) as service:
            report = service.run_batch(
                [diverging],
                [parse_td("R(a, b) -> R(b, a)")],
                budget=Budget(max_steps=3),
            )
        assert report.stats.start_reuses == 1
        assert "start rebuild(s) avoided" in report.stats.describe()

    def test_service_reuses_one_pool_across_batches(self):
        transitivity = parse_td("R(x, y) & R(y, z) -> R(x, z)")
        with InferenceService(workers=1) as service:
            service.run_batch([transitivity], [parse_td("R(a, b) & R(b, c) -> R(a, c)")])
            pool = service.pool()
            service.run_batch(
                [transitivity], [parse_td("R(p, q) & R(q, r) -> R(p, r)")]
            )
            assert service.pool() is pool

    def test_serial_service_has_no_pool(self):
        assert InferenceService().pool() is None


class TestPremiseMemo:
    def test_memo_evicts_oldest_first_not_wholesale(self):
        service = InferenceService()
        target = parse_td("R(a, b) -> R(b, a)")
        hot = (parse_td("R(x, y) & R(y, z) -> R(x, z)"),)
        service.submit(hot, target)
        # Flood the memo past its bound with distinct premise tuples,
        # re-touching the hot tuple along the way so LRU keeps it.
        for index in range(service.PREMISE_MEMO_SIZE + 10):
            filler = (parse_td(f"R(x, y) & R(y, v{index}) -> R(x, v{index})"),)
            service.submit(filler, target)
            service.submit(hot, target)
        assert len(service._premise_keys) <= service.PREMISE_MEMO_SIZE
        assert hot in service._premise_keys
        service._pending.clear()


class TestScheduler:
    def test_run_serial_races_variants_until_decisive(self):
        transitivity = parse_td("R(x, y) & R(y, z) -> R(x, z)")
        target = parse_td("R(a, b) & R(b, c) -> R(a, c)")
        task = QueryTask(slot=0, dependencies=(transitivity,), target=target)
        results = run_serial(
            [task],
            Budget(max_steps=500),
            (ChaseVariant.STANDARD, ChaseVariant.SEMI_NAIVE),
        )
        assert results[0].status is InferenceStatus.PROVED

    def test_run_pool_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            run_pool([], Budget(), 0, (ChaseVariant.STANDARD,))

    def test_divide_budget(self):
        shared = Budget(max_steps=100, max_rows=10, max_seconds=8.0)
        per_query = divide_budget(shared, 4)
        assert per_query.max_steps == 25
        assert per_query.max_rows == 2
        assert per_query.max_seconds == 2.0

    def test_divide_budget_floors_at_one(self):
        per_query = divide_budget(Budget(max_steps=2, max_rows=None), 10)
        assert per_query.max_steps == 1
        assert per_query.max_rows is None

    def test_share_budget_divides_across_misses(self):
        transitivity = parse_td("R(x, y) & R(y, z) -> R(x, z)")
        targets = [
            parse_td("R(a, b) & R(b, c) & R(c, d) & R(d, e) -> R(a, e)"),
            parse_td("R(p, q) & R(q, r) & R(r, s) & R(s, t) & R(t, u) -> R(p, u)"),
        ]
        # 4 whole-batch steps over 2 misses = 2 steps each: both starve.
        shared = InferenceService(share_budget=True)
        starved = shared.run_batch(
            [transitivity], targets, budget=Budget(max_steps=4)
        )
        assert all(
            o.status is InferenceStatus.UNKNOWN for o in starved.outcomes
        )
        # A generous per-query budget decides both.
        per_query = InferenceService()
        decided = per_query.run_batch(
            [transitivity], targets, budget=Budget(max_steps=200)
        )
        assert all(o.status is InferenceStatus.PROVED for o in decided.outcomes)

    def test_share_budget_unknowns_hit_cache_on_identical_reruns(self):
        diverging = parse_td("R(x, y) -> R(y, z)")
        targets = [
            parse_td("R(a, b) -> R(b, a)"),
            parse_td("R(p, q) -> R(q, q)"),
        ]
        service = InferenceService(share_budget=True)
        budget = Budget(max_steps=10)
        first = service.run_batch([diverging], targets, budget=budget)
        assert all(o.status is InferenceStatus.UNKNOWN for o in first.outcomes)
        # Identical re-run: the cached UNKNOWNs were computed under the
        # same division, so they must be served, not eternally re-chased.
        second = service.run_batch([diverging], targets, budget=budget)
        assert second.stats.cache_hits == len(targets)
        assert second.stats.executed == 0


class TestCliBatch:
    @pytest.fixture
    def files(self, tmp_path):
        deps = tmp_path / "deps.txt"
        deps.write_text("R(x, y) & R(y, z) -> R(x, z)\n")
        targets = tmp_path / "targets.txt"
        targets.write_text(
            "R(a, b) & R(b, c) -> R(a, c)\n"
            "R(u, v) & R(v, w) -> R(u, w)\n"
            "R(a, b) -> R(b, a)\n"
        )
        return str(deps), str(targets)

    def test_batch_table_and_exit_code(self, files, capsys):
        from repro.cli import EXIT_DISPROVED, main

        deps, targets = files
        code = main(["batch", "--deps", deps, "--targets", targets])
        assert code == EXIT_DISPROVED  # one refuted target dominates
        output = capsys.readouterr().out
        assert "proved" in output and "disproved" in output
        assert "dedup" in output  # the disguised duplicate was not re-chased
        assert "cache" in output

    def test_batch_all_proved_exit_code(self, tmp_path, capsys):
        from repro.cli import EXIT_PROVED, main

        deps = tmp_path / "deps.txt"
        deps.write_text("R(x, y) & R(y, z) -> R(x, z)\n")
        targets = tmp_path / "targets.txt"
        targets.write_text("R(a, b) & R(b, c) -> R(a, c)\n")
        code = main(["batch", "--deps", str(deps), "--targets", str(targets)])
        assert code == EXIT_PROVED

    def test_batch_empty_targets_is_usage_error(self, tmp_path, capsys):
        from repro.cli import EXIT_USAGE, main

        deps = tmp_path / "deps.txt"
        deps.write_text("R(x, y) & R(y, z) -> R(x, z)\n")
        targets = tmp_path / "targets.txt"
        targets.write_text("# only comments, no targets\n")
        code = main(["batch", "--deps", str(deps), "--targets", str(targets)])
        assert code == EXIT_USAGE
        assert "no targets" in capsys.readouterr().err

    def test_batch_negative_workers_is_usage_error(self, files, capsys):
        from repro.cli import EXIT_USAGE, main

        deps, targets = files
        code = main(
            ["batch", "--deps", deps, "--targets", targets, "--workers", "-1"]
        )
        assert code == EXIT_USAGE
        assert "--workers" in capsys.readouterr().err

    def test_batch_disk_cache_warms_across_invocations(self, files, tmp_path, capsys):
        from repro.cli import main

        deps, targets = files
        cache = str(tmp_path / "cache.jsonl")
        main(["batch", "--deps", deps, "--targets", targets, "--cache", cache])
        capsys.readouterr()
        main(["batch", "--deps", deps, "--targets", targets, "--cache", cache])
        output = capsys.readouterr().out
        assert "3 cache hit(s)" in output

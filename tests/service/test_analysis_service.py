"""End-to-end acceptance tests for analyzer-backed serving.

A certified weakly-acyclic implication query submitted over HTTP with
*no client budget* must come back decisive (never UNKNOWN) and carry the
analyzer's provenance; uncertified sets must still honor explicit
budgets exactly as before.  Also checks the ``repro_analysis_*`` metric
families register and move.
"""

from __future__ import annotations

import pytest

from repro.chase.budget import Budget
from repro.chase.implication import InferenceStatus
from repro.dependencies.parser import parse_td
from repro.obs.metrics import MetricsRegistry
from repro.service import (
    InferenceService,
    ServerThread,
    ServiceClient,
)
from repro.service.instruments import ServiceInstruments
from repro.workloads.generators import disguise, transitivity_family


@pytest.fixture
def transitivity():
    return parse_td("R(x, y) & R(y, z) -> R(x, z)")


@pytest.fixture
def server():
    with ServerThread(InferenceService(), batch_window=0.05) as handle:
        yield handle


@pytest.fixture
def client(server):
    return ServiceClient(server.base_url)


class TestCertifiedQueriesOverHTTP:
    def test_budgetless_query_is_decisive_with_provenance(
        self, client, transitivity
    ):
        # No budget in the request: the server derives one from the
        # termination certificate instead of applying its ceiling.
        verdict = client.implies([transitivity], transitivity_family(6)[-1])
        assert verdict.status is InferenceStatus.PROVED
        provenance = verdict.outcome.analysis
        assert provenance is not None
        assert provenance["certified"] is True
        assert provenance["applied"] is True
        assert provenance["fragment"] == "full-tgd"
        assert provenance["derived_max_steps"] is not None

    def test_budgetless_disproof_is_decisive(self, client, transitivity):
        symmetric_target = parse_td("R(x, y) -> R(y, x)")
        verdict = client.implies([transitivity], symmetric_target)
        assert verdict.status is InferenceStatus.DISPROVED
        assert verdict.outcome.analysis is not None
        assert verdict.outcome.analysis["applied"] is True

    def test_pruning_provenance_crosses_the_wire(self, client, transitivity):
        duplicate = disguise(transitivity, seed=3)
        verdict = client.implies(
            [transitivity, duplicate], transitivity_family(4)[-1]
        )
        assert verdict.status is InferenceStatus.PROVED
        provenance = verdict.outcome.analysis
        assert provenance is not None
        assert provenance["pruned"] == 1
        assert provenance["dropped"][0]["reason"] == "duplicate"

    def test_explicit_budget_still_starves(self, client, transitivity):
        # A client that *asks* for a budget keeps exact legacy behavior,
        # even though the premise set is certified.
        verdict = client.implies(
            [transitivity],
            transitivity_family(8)[-1],
            budget=Budget(max_steps=2, max_rows=None, max_seconds=None),
        )
        assert verdict.status is InferenceStatus.UNKNOWN
        provenance = verdict.outcome.analysis
        assert provenance is not None
        assert provenance["certified"] is True
        assert provenance["applied"] is False

    def test_uncertified_set_honors_budget(self, client):
        successor = parse_td("R(x, y) -> R(y, z)")
        verdict = client.implies(
            [successor],
            parse_td("R(x, y) & R(y, z) -> R(x, z)"),
            budget=Budget(max_steps=50, max_rows=200, max_seconds=None),
        )
        assert verdict.status is InferenceStatus.UNKNOWN
        assert verdict.outcome.analysis is not None
        assert verdict.outcome.analysis["certified"] is False


class TestAnalysisMetrics:
    def test_counters_move_on_certified_run(self, transitivity):
        service = InferenceService()
        service.submit([transitivity], transitivity_family(5)[-1])
        report = service.run(derive_budgets=True)
        assert report.outcomes[0].status is InferenceStatus.PROVED
        exported = service.metrics.render_prometheus()
        assert "repro_analysis_certified_total 1" in exported
        assert "repro_analysis_derived_budget_steps" in exported

    def test_uncertified_counter_moves(self):
        successor = parse_td("R(x, y) -> R(y, z)")
        service = InferenceService()
        service.submit([successor], parse_td("R(x, y) & R(y, z) -> R(x, z)"))
        service.run(Budget(max_steps=10, max_rows=50, max_seconds=None))
        exported = service.metrics.render_prometheus()
        assert "repro_analysis_uncertified_total 1" in exported

    def test_families_registered_before_traffic(self):
        instruments = ServiceInstruments(MetricsRegistry())
        exported = instruments.registry.render_prometheus()
        for family in (
            "repro_analysis_certified_total",
            "repro_analysis_uncertified_total",
            "repro_analysis_pruned_total",
            "repro_analysis_derived_budget_steps",
        ):
            assert family in exported

"""Integration tests for the ``/v1/models`` endpoints.

One real server per test class (:class:`ServerThread`), driven through
:class:`ServiceClient` — the same wire path production traffic takes:
register, incremental facts, certain-answer queries, implication checks,
lifecycle (list/info/drop/evict) and the error contract.
"""

import pytest

from repro.chase.budget import Budget
from repro.dependencies.parser import parse_td
from repro.dependencies.template import Variable
from repro.relational.queries import ConjunctiveQuery
from repro.relational.schema import Schema
from repro.relational.values import Const
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import ServerThread

SCHEMA = Schema(["FROM", "TO"])
TRANSITIVITY = parse_td("R(x, y) & R(y, z) -> R(x, z)", SCHEMA)
SYMMETRY = parse_td("R(x, y) -> R(y, x)", SCHEMA)
A, B, C, D = Const("a"), Const("b"), Const("c"), Const("d")

ALL_EDGES = ConjunctiveQuery(
    SCHEMA,
    (Variable("x"), Variable("y")),
    [(Variable("x"), Variable("y"))],
)


@pytest.fixture(scope="module")
def server():
    with ServerThread(max_models=2) as handle:
        yield handle


@pytest.fixture()
def client(server):
    return ServiceClient(server.base_url)


def _register_chain(client, *rows):
    answer = client.register_model(SCHEMA, [TRANSITIVITY], list(rows))
    assert answer["report"]["status"] == "terminated"
    return answer["model_id"]


class TestModelLifecycle:
    def test_register_reports_and_lists(self, client):
        answer = client.register_model(
            SCHEMA, [TRANSITIVITY], [(A, B), (B, C)]
        )
        model_id = answer["model_id"]
        assert answer["report"]["op"] == "register"
        assert answer["report"]["applied"] == 2
        assert answer["report"]["derived"] == 1  # (a,c)
        assert answer["model"]["rows"] == 3
        assert answer["model"]["saturated"] is True
        listing = client.models()
        assert model_id in [m["model_id"] for m in listing["models"]]
        info = client.model_info(model_id)
        assert info["base_rows"] == 2
        assert info["schema"] == ["FROM", "TO"]
        client.drop_model(model_id)

    def test_drop_then_404(self, client):
        model_id = _register_chain(client, (A, B))
        assert client.drop_model(model_id)["deleted"] is True
        for call in (
            lambda: client.model_info(model_id),
            lambda: client.model_facts(model_id, insert=[(A, B)]),
            lambda: client.model_query(model_id, ALL_EDGES),
            lambda: client.model_implies(model_id, SYMMETRY),
            lambda: client.drop_model(model_id),
        ):
            with pytest.raises(ServiceError, match="404"):
                call()

    def test_lru_eviction_at_capacity(self, client):
        first = _register_chain(client, (A, B))
        second = _register_chain(client, (B, C))
        client.model_info(first)  # touch: first is now most recent
        third = _register_chain(client, (C, D))  # evicts second
        ids = [m["model_id"] for m in client.models()["models"]]
        assert second not in ids
        assert first in ids and third in ids
        assert client.models()["evictions"] >= 1
        for model_id in (first, third):
            client.drop_model(model_id)


class TestFactsAndQueries:
    def test_incremental_insert_and_query(self, client):
        model_id = _register_chain(client, (A, B), (B, C))
        answer = client.model_facts(model_id, insert=[(C, D)])
        (report,) = answer["reports"]
        assert report["op"] == "insert"
        assert report["applied"] == 1
        assert report["derived"] == 2  # (b,d), (a,d)
        assert answer["model"]["rows"] == 6
        assert client.model_query(model_id, ALL_EDGES) == {
            (A, B), (B, C), (C, D), (A, C), (B, D), (A, D),
        }
        client.drop_model(model_id)

    def test_delete_then_verdicts_flip(self, client):
        model_id = _register_chain(client, (A, B), (B, C), (C, A))
        assert client.model_implies(model_id, SYMMETRY) is True  # 3-cycle
        answer = client.model_facts(model_id, delete=[(C, A)])
        (report,) = answer["reports"]
        assert report["op"] == "delete"
        assert report["overdeleted"] > 0
        assert client.model_implies(model_id, SYMMETRY) is False
        assert client.model_implies(model_id, TRANSITIVITY) is True
        client.drop_model(model_id)

    def test_upsert_applies_delete_before_insert(self, client):
        model_id = _register_chain(client, (A, B))
        answer = client.model_facts(
            model_id, insert=[(A, B), (B, C)], delete=[(A, B)]
        )
        assert [r["op"] for r in answer["reports"]] == ["delete", "insert"]
        assert client.model_query(model_id, ALL_EDGES) == {
            (A, B), (B, C), (A, C),
        }
        client.drop_model(model_id)

    def test_budget_clamped_and_reported(self, client):
        successor = parse_td("R(x, y) -> R(y, s)", SCHEMA)
        answer = client.register_model(
            SCHEMA,
            [successor],
            [(A, B)],
            budget=Budget(max_steps=5, max_seconds=None),
        )
        assert answer["report"]["status"] == "budget_exhausted"
        assert answer["model"]["saturated"] is False
        client.drop_model(answer["model_id"])


class TestErrorContract:
    def test_register_requires_schema(self, client):
        with pytest.raises(ServiceError, match="'schema' is required"):
            client.request("POST", "/v1/models", {"dependencies": []})

    def test_facts_requires_rows(self, client):
        model_id = _register_chain(client, (A, B))
        with pytest.raises(ServiceError, match="400"):
            client.request("POST", f"/v1/models/{model_id}/facts", {})
        client.drop_model(model_id)

    def test_arity_mismatch_is_a_400(self, client):
        model_id = _register_chain(client, (A, B))
        with pytest.raises(ServiceError, match="400"):
            client.model_facts(model_id, insert=[(A, B, C)])
        client.drop_model(model_id)

    def test_query_requires_exactly_one_kind(self, client):
        model_id = _register_chain(client, (A, B))
        for payload in ({}, {"query": None, "target": None}):
            with pytest.raises(ServiceError, match="exactly one"):
                client.request(
                    "POST", f"/v1/models/{model_id}/query", payload
                )
        client.drop_model(model_id)

    def test_method_discipline(self, client):
        with pytest.raises(ServiceError, match="405"):
            client.request("DELETE", "/v1/models")
        model_id = _register_chain(client, (A, B))
        with pytest.raises(ServiceError, match="405"):
            client.request("GET", f"/v1/models/{model_id}/facts")
        with pytest.raises(ServiceError, match="404"):
            client.request("POST", f"/v1/models/{model_id}/bogus", {})
        client.drop_model(model_id)


class TestObservability:
    def test_stats_and_metrics_cover_models(self, client):
        model_id = _register_chain(client, (A, B))
        client.model_facts(model_id, insert=[(B, C)])
        client.model_query(model_id, ALL_EDGES)
        client.model_implies(model_id, SYMMETRY)
        stats = client.stats()
        assert stats["models"]["active"] >= 1
        assert stats["models"]["max_models"] == 2
        text = client.metrics_text()
        assert 'repro_model_maintain_seconds_count{op="insert"}' in text
        assert 'repro_model_queries_total{kind="cq"}' in text
        assert 'repro_model_queries_total{kind="implies"}' in text
        assert "repro_models_active" in text
        assert "repro_model_base_rows" in text
        client.drop_model(model_id)

"""Tests for repro.service.cache: round-trips, budgets, LRU, disk tier."""

import pytest

from repro.chase.budget import Budget
from repro.chase.engine import replay
from repro.chase.implication import (
    InferenceStatus,
    conclusion_satisfied,
    implies,
)
from repro.dependencies.canonical import query_fingerprint
from repro.dependencies.parser import parse_td
from repro.service.cache import (
    JsonLinesStore,
    ResultCache,
    budget_covers,
)


@pytest.fixture
def transitivity():
    return parse_td("R(x, y) & R(y, z) -> R(x, z)")


@pytest.fixture
def provable_target():
    return parse_td("R(a, b) & R(b, c) & R(c, d) -> R(a, d)")


@pytest.fixture
def refutable_target():
    return parse_td("R(a, b) -> R(b, a)")


def _fingerprint(dependencies, target):
    return query_fingerprint(dependencies, target)


class TestBudgetCovers:
    def test_equal_budgets_cover(self):
        budget = Budget(max_steps=10, max_rows=20, max_seconds=1.0)
        assert budget_covers(budget, budget)

    def test_bigger_request_is_not_covered(self):
        cached = Budget(max_steps=10)
        assert not budget_covers(cached, Budget(max_steps=11))
        assert not budget_covers(cached, Budget(max_steps=None))

    def test_smaller_request_is_covered(self):
        cached = Budget(max_steps=10)
        assert budget_covers(cached, Budget(max_steps=5))

    def test_unlimited_cache_covers_everything(self):
        assert budget_covers(Budget.unlimited(), Budget())


class TestRoundTrip:
    def test_proved_outcome_trace_still_replays(
        self, transitivity, provable_target
    ):
        outcome = implies([transitivity], provable_target)
        assert outcome.status is InferenceStatus.PROVED
        cache = ResultCache()
        fingerprint = _fingerprint([transitivity], provable_target)
        cache.record(fingerprint, outcome, Budget())
        entry = cache.lookup(fingerprint, Budget())
        assert entry is not None
        cached = entry.outcome()
        assert cached.status is InferenceStatus.PROVED
        # The certificate is independently checkable: replay the trace
        # (with verification on) from the frozen target and confirm the
        # conclusion is derived.
        start, frozen = cached.target.freeze()
        final = replay(start, cached.chase_result.steps, verify=True)
        assert conclusion_satisfied(final, cached.target, frozen)

    def test_disproved_counterexample_still_violates(
        self, transitivity, refutable_target
    ):
        from repro.io.json_codec import outcome_from_json

        outcome = implies([transitivity], refutable_target)
        assert outcome.status is InferenceStatus.DISPROVED
        cache = ResultCache()
        fingerprint = _fingerprint([transitivity], refutable_target)
        cache.record(fingerprint, outcome, Budget())
        entry = cache.lookup(fingerprint, Budget())
        # The counterexample is the chased instance: stored once, not twice.
        assert "counterexample" not in entry.payload
        assert entry.payload.get("counterexample_shared") is True
        # Decode the stored payload (what a fresh process would read).
        cached = outcome_from_json(entry.payload)
        counterexample = cached.counterexample
        assert counterexample is not None
        # Still a genuine counterexample: satisfies the premises,
        # violates the target.
        assert transitivity.holds_in(counterexample)
        assert refutable_target.find_violation(counterexample) is not None

    def test_decoded_stats_clock_is_pinned(self, transitivity, provable_target):
        import time

        from repro.io.json_codec import outcome_from_json

        outcome = implies([transitivity], provable_target)
        cache = ResultCache()
        cache.record("q", outcome, Budget())
        # Decode from the JSON payload (not the memoized live object):
        # the recorded elapsed time must not keep growing with wall-clock.
        decoded = outcome_from_json(cache.lookup("q", Budget()).payload)
        first = decoded.chase_result.stats.elapsed_seconds
        time.sleep(0.05)
        assert decoded.chase_result.stats.elapsed_seconds == first

    def test_unknown_round_trip_keeps_status(self, transitivity):
        from repro.io.json_codec import outcome_from_json

        diverging = parse_td("R(x, y) -> R(y, z)")
        tight = Budget(max_steps=3)
        outcome = implies([diverging], parse_td("R(a, b) -> R(b, a)"), budget=tight)
        assert outcome.status is InferenceStatus.UNKNOWN
        cache = ResultCache()
        cache.record("unknown-query", outcome, tight)
        entry = cache.lookup("unknown-query", tight)
        assert entry is not None
        assert entry.outcome().status is InferenceStatus.UNKNOWN
        # UNKNOWN carries no certificate, so its stored payload is slim:
        # the budget-exhausted chase result is stripped before encoding.
        assert "chase_result" not in entry.payload
        assert outcome_from_json(entry.payload).status is InferenceStatus.UNKNOWN


class TestUnknownBudgetPolicy:
    def _unknown_outcome(self, budget):
        diverging = parse_td("R(x, y) -> R(y, z)")
        return implies([diverging], parse_td("R(a, b) -> R(b, a)"), budget=budget)

    def test_bigger_budget_is_a_stale_miss(self):
        cached_budget = Budget(max_steps=3)
        cache = ResultCache()
        cache.record("q", self._unknown_outcome(cached_budget), cached_budget)
        assert cache.lookup("q", Budget(max_steps=100)) is None
        assert cache.stats.stale == 1

    def test_covered_budget_is_a_hit(self):
        cached_budget = Budget(max_steps=50)
        cache = ResultCache()
        cache.record("q", self._unknown_outcome(Budget(max_steps=3)), cached_budget)
        assert cache.lookup("q", Budget(max_steps=10)) is not None

    def test_untried_variant_is_a_stale_miss(self):
        cached_budget = Budget(max_steps=3)
        cache = ResultCache()
        cache.record(
            "q",
            self._unknown_outcome(cached_budget),
            cached_budget,
            variants=("standard",),
        )
        # Same budget, but the requester also races SEMI_NAIVE — a
        # discipline the entry never tried, which might decide the query.
        assert (
            cache.lookup(
                "q", cached_budget, variants=("standard", "semi_naive")
            )
            is None
        )
        assert cache.stats.stale == 1
        # A requester whose variants the entry covers still hits.
        assert cache.lookup("q", cached_budget, variants=("standard",)) is not None

    def test_racing_service_retries_a_standard_only_unknown(self):
        from repro.chase.engine import ChaseVariant
        from repro.service import InferenceService

        diverging = parse_td("R(x, y) -> R(y, z)")
        target = parse_td("R(a, b) -> R(b, a)")
        cache = ResultCache()
        budget = Budget(max_steps=3)
        standard = InferenceService(cache, variant=ChaseVariant.STANDARD)
        first = standard.run_batch([diverging], [target], budget=budget)
        assert first.outcomes[0].status is InferenceStatus.UNKNOWN
        racing = InferenceService(cache, race_variants=True)
        second = racing.run_batch([diverging], [target], budget=budget)
        assert second.stats.cache_hits == 0 and second.stats.executed == 1

    def test_retry_overwrites_the_unknown(self, transitivity, provable_target):
        cache = ResultCache()
        tight = Budget(max_steps=1)
        unknown = implies([transitivity], provable_target, budget=tight)
        assert unknown.status is InferenceStatus.UNKNOWN
        cache.record("q", unknown, tight)
        proved = implies([transitivity], provable_target)
        cache.record("q", proved, Budget())
        entry = cache.lookup("q", Budget())
        assert entry.status is InferenceStatus.PROVED


class TestTracePolicy:
    def test_traceless_proved_is_stale_for_trace_wanting_callers(
        self, transitivity, provable_target
    ):
        bare = implies([transitivity], provable_target, record_trace=False)
        assert bare.status is InferenceStatus.PROVED
        cache = ResultCache()
        cache.record("q", bare, Budget(), traced=False)
        # A caller content without certificates gets the hit...
        assert cache.lookup("q", Budget()) is not None
        # ...but a certificate-wanting caller recomputes.
        assert cache.lookup("q", Budget(), require_trace=True) is None
        assert cache.stats.stale == 1

    def test_traceless_service_hit_is_upgraded_by_tracing_service(
        self, transitivity, provable_target
    ):
        from repro.service import InferenceService

        cache = ResultCache()
        bare = InferenceService(cache, record_trace=False)
        bare.run_batch([transitivity], [provable_target])
        full = InferenceService(cache)  # record_trace=True by default
        report = full.run_batch([transitivity], [provable_target])
        assert report.stats.cache_hits == 0 and report.stats.executed == 1
        outcome = report.outcomes[0]
        assert outcome.chase_result.steps  # certificate present again
        # And the upgraded entry now serves certificate-wanting callers.
        warm = full.run_batch([transitivity], [provable_target])
        assert warm.stats.cache_hits == 1


class TestLru:
    def test_eviction_drops_least_recently_used(
        self, transitivity, refutable_target
    ):
        outcome = implies([transitivity], refutable_target)
        cache = ResultCache(maxsize=2)
        budget = Budget()
        cache.record("a", outcome, budget)
        cache.record("b", outcome, budget)
        assert cache.lookup("a", budget) is not None  # refresh "a"
        cache.record("c", outcome, budget)  # evicts "b"
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.stats.evictions == 1


class TestDiskStore:
    def test_verdicts_survive_the_process(
        self, tmp_path, transitivity, provable_target
    ):
        path = tmp_path / "cache.jsonl"
        outcome = implies([transitivity], provable_target)
        fingerprint = _fingerprint([transitivity], provable_target)
        first = ResultCache(store=JsonLinesStore(path))
        first.record(fingerprint, outcome, Budget())

        # A fresh cache (fresh "process") reloads the verdict from disk.
        second = ResultCache(store=JsonLinesStore(path))
        entry = second.lookup(fingerprint, Budget())
        assert entry is not None
        assert entry.outcome().status is InferenceStatus.PROVED

    def test_corrupt_lines_are_skipped_not_fatal(
        self, tmp_path, transitivity, provable_target
    ):
        path = tmp_path / "cache.jsonl"
        outcome = implies([transitivity], provable_target)
        first = ResultCache(store=JsonLinesStore(path))
        first.record("good", outcome, Budget())
        # Simulate a torn append and a hand-mangled record.
        with path.open("a") as handle:
            handle.write('{"fingerprint": "torn", "status": "pro')
            handle.write("\n")
            handle.write('{"fingerprint": "partial", "status": "proved"}\n')
        reloaded = ResultCache(store=JsonLinesStore(path))
        assert reloaded.lookup("good", Budget()) is not None
        assert "torn" not in reloaded and "partial" not in reloaded

    def test_unknown_never_demotes_a_decisive_verdict(
        self, tmp_path, transitivity, provable_target
    ):
        path = tmp_path / "cache.jsonl"
        cache = ResultCache(store=JsonLinesStore(path))
        proved = implies([transitivity], provable_target)
        cache.record("q", proved, Budget())
        tight = Budget(max_steps=1)
        unknown = implies([transitivity], provable_target, budget=tight)
        assert unknown.status is InferenceStatus.UNKNOWN
        cache.record("q", unknown, tight)
        # The decisive verdict survives, in memory and on disk.
        assert cache.lookup("q", Budget()).status is InferenceStatus.PROVED
        reloaded = ResultCache(store=JsonLinesStore(path))
        assert reloaded.lookup("q", Budget()).status is InferenceStatus.PROVED

    def test_later_lines_override_earlier(self, tmp_path, transitivity, provable_target):
        path = tmp_path / "cache.jsonl"
        store = JsonLinesStore(path)
        tight = Budget(max_steps=1)
        unknown = implies([transitivity], provable_target, budget=tight)
        proved = implies([transitivity], provable_target)
        first = ResultCache(store=store)
        first.record("q", unknown, tight)
        first.record("q", proved, Budget())

        reloaded = ResultCache(store=JsonLinesStore(path))
        assert reloaded.lookup("q", Budget()).status is InferenceStatus.PROVED

"""Tests for repro.service.cache: round-trips, budgets, LRU, disk tier."""

import pytest

from repro.chase.budget import Budget
from repro.chase.engine import replay
from repro.chase.implication import (
    InferenceStatus,
    conclusion_satisfied,
    implies,
)
from repro.dependencies.canonical import query_fingerprint
from repro.dependencies.parser import parse_td
from repro.service.cache import (
    JsonLinesStore,
    ResultCache,
    budget_covers,
    budget_join,
)


@pytest.fixture
def transitivity():
    return parse_td("R(x, y) & R(y, z) -> R(x, z)")


@pytest.fixture
def provable_target():
    return parse_td("R(a, b) & R(b, c) & R(c, d) -> R(a, d)")


@pytest.fixture
def refutable_target():
    return parse_td("R(a, b) -> R(b, a)")


def _fingerprint(dependencies, target):
    return query_fingerprint(dependencies, target)


class TestBudgetCovers:
    def test_equal_budgets_cover(self):
        budget = Budget(max_steps=10, max_rows=20, max_seconds=1.0)
        assert budget_covers(budget, budget)

    def test_bigger_request_is_not_covered(self):
        cached = Budget(max_steps=10)
        assert not budget_covers(cached, Budget(max_steps=11))
        assert not budget_covers(cached, Budget(max_steps=None))

    def test_smaller_request_is_covered(self):
        cached = Budget(max_steps=10)
        assert budget_covers(cached, Budget(max_steps=5))

    def test_unlimited_cache_covers_everything(self):
        assert budget_covers(Budget.unlimited(), Budget())

    def test_each_axis_vetoes_independently(self):
        cached = Budget(max_steps=10, max_rows=10, max_seconds=10.0)
        assert not budget_covers(cached, Budget(max_steps=5, max_rows=20, max_seconds=5.0))
        assert not budget_covers(cached, Budget(max_steps=5, max_rows=5, max_seconds=20.0))
        assert not budget_covers(cached, Budget(max_steps=20, max_rows=5, max_seconds=5.0))
        assert budget_covers(cached, Budget(max_steps=10, max_rows=10, max_seconds=10.0))

    def test_unlimited_request_axis_defeats_finite_cache_axis(self):
        cached = Budget(max_steps=10, max_rows=None, max_seconds=None)
        assert not budget_covers(cached, Budget(max_steps=None, max_rows=1, max_seconds=1.0))
        # The cache's own unlimited axes cover any finite request.
        assert budget_covers(cached, Budget(max_steps=10, max_rows=10**9, max_seconds=10**9))


class TestBudgetJoin:
    def test_join_takes_the_generous_axis_each_way(self):
        first = Budget(max_steps=10, max_rows=500, max_seconds=1.0)
        second = Budget(max_steps=100, max_rows=50, max_seconds=9.0)
        joined = budget_join(first, second)
        assert joined.max_steps == 100
        assert joined.max_rows == 500
        assert joined.max_seconds == 9.0

    def test_none_is_unlimited_and_wins(self):
        joined = budget_join(Budget(max_steps=None, max_rows=5, max_seconds=1.0),
                             Budget(max_steps=10, max_rows=None, max_seconds=2.0))
        assert joined.max_steps is None
        assert joined.max_rows is None
        assert joined.max_seconds == 2.0

    def test_join_covers_both_inputs(self):
        first = Budget(max_steps=3, max_rows=100, max_seconds=None)
        second = Budget(max_steps=30, max_rows=10, max_seconds=5.0)
        joined = budget_join(first, second)
        assert budget_covers(joined, first)
        assert budget_covers(joined, second)

    def test_meet_is_covered_by_both_inputs(self):
        from repro.service.cache import budget_meet

        first = Budget(max_steps=3, max_rows=100, max_seconds=None)
        second = Budget(max_steps=30, max_rows=10, max_seconds=5.0)
        met = budget_meet(first, second)
        assert budget_covers(first, met)
        assert budget_covers(second, met)
        assert (met.max_steps, met.max_rows, met.max_seconds) == (3, 10, 5.0)

    def test_meet_clamps_unlimited_axes_to_the_ceiling(self):
        from repro.service.cache import budget_meet

        ceiling = Budget(max_steps=100, max_rows=1000, max_seconds=10.0)
        met = budget_meet(Budget.unlimited(), ceiling)
        assert (met.max_steps, met.max_rows, met.max_seconds) == (
            100,
            1000,
            10.0,
        )


class TestRoundTrip:
    def test_proved_outcome_trace_still_replays(
        self, transitivity, provable_target
    ):
        outcome = implies([transitivity], provable_target)
        assert outcome.status is InferenceStatus.PROVED
        cache = ResultCache()
        fingerprint = _fingerprint([transitivity], provable_target)
        cache.record(fingerprint, outcome, Budget())
        entry = cache.lookup(fingerprint, Budget())
        assert entry is not None
        cached = entry.outcome()
        assert cached.status is InferenceStatus.PROVED
        # The certificate is independently checkable: replay the trace
        # (with verification on) from the frozen target and confirm the
        # conclusion is derived.
        start, frozen = cached.target.freeze()
        final = replay(start, cached.chase_result.steps, verify=True)
        assert conclusion_satisfied(final, cached.target, frozen)

    def test_disproved_counterexample_still_violates(
        self, transitivity, refutable_target
    ):
        from repro.io.json_codec import outcome_from_json

        outcome = implies([transitivity], refutable_target)
        assert outcome.status is InferenceStatus.DISPROVED
        cache = ResultCache()
        fingerprint = _fingerprint([transitivity], refutable_target)
        cache.record(fingerprint, outcome, Budget())
        entry = cache.lookup(fingerprint, Budget())
        # The counterexample is the chased instance: stored once, not twice.
        assert "counterexample" not in entry.payload
        assert entry.payload.get("counterexample_shared") is True
        # Decode the stored payload (what a fresh process would read).
        cached = outcome_from_json(entry.payload)
        counterexample = cached.counterexample
        assert counterexample is not None
        # Still a genuine counterexample: satisfies the premises,
        # violates the target.
        assert transitivity.holds_in(counterexample)
        assert refutable_target.find_violation(counterexample) is not None

    def test_decoded_stats_clock_is_pinned(self, transitivity, provable_target):
        import time

        from repro.io.json_codec import outcome_from_json

        outcome = implies([transitivity], provable_target)
        cache = ResultCache()
        cache.record("q", outcome, Budget())
        # Decode from the JSON payload (not the memoized live object):
        # the recorded elapsed time must not keep growing with wall-clock.
        decoded = outcome_from_json(cache.lookup("q", Budget()).payload)
        first = decoded.chase_result.stats.elapsed_seconds
        time.sleep(0.05)
        assert decoded.chase_result.stats.elapsed_seconds == first

    def test_unknown_round_trip_keeps_status(self, transitivity):
        from repro.io.json_codec import outcome_from_json

        diverging = parse_td("R(x, y) -> R(y, z)")
        tight = Budget(max_steps=3)
        outcome = implies([diverging], parse_td("R(a, b) -> R(b, a)"), budget=tight)
        assert outcome.status is InferenceStatus.UNKNOWN
        cache = ResultCache()
        cache.record("unknown-query", outcome, tight)
        entry = cache.lookup("unknown-query", tight)
        assert entry is not None
        assert entry.outcome().status is InferenceStatus.UNKNOWN
        # UNKNOWN carries no certificate, so its stored payload is slim:
        # the budget-exhausted chase result is stripped before encoding.
        assert "chase_result" not in entry.payload
        assert outcome_from_json(entry.payload).status is InferenceStatus.UNKNOWN


class TestUnknownBudgetPolicy:
    def _unknown_outcome(self, budget):
        diverging = parse_td("R(x, y) -> R(y, z)")
        return implies([diverging], parse_td("R(a, b) -> R(b, a)"), budget=budget)

    def test_bigger_budget_is_a_stale_miss(self):
        cached_budget = Budget(max_steps=3)
        cache = ResultCache()
        cache.record("q", self._unknown_outcome(cached_budget), cached_budget)
        assert cache.lookup("q", Budget(max_steps=100)) is None
        assert cache.stats.stale == 1

    def test_covered_budget_is_a_hit(self):
        cached_budget = Budget(max_steps=50)
        cache = ResultCache()
        cache.record("q", self._unknown_outcome(Budget(max_steps=3)), cached_budget)
        assert cache.lookup("q", Budget(max_steps=10)) is not None

    def test_untried_variant_is_a_stale_miss(self):
        cached_budget = Budget(max_steps=3)
        cache = ResultCache()
        cache.record(
            "q",
            self._unknown_outcome(cached_budget),
            cached_budget,
            variants=("standard",),
        )
        # Same budget, but the requester also races SEMI_NAIVE — a
        # discipline the entry never tried, which might decide the query.
        assert (
            cache.lookup(
                "q", cached_budget, variants=("standard", "semi_naive")
            )
            is None
        )
        assert cache.stats.stale == 1
        # A requester whose variants the entry covers still hits.
        assert cache.lookup("q", cached_budget, variants=("standard",)) is not None

    def test_racing_service_retries_a_standard_only_unknown(self):
        from repro.chase.engine import ChaseVariant
        from repro.service import InferenceService

        diverging = parse_td("R(x, y) -> R(y, z)")
        target = parse_td("R(a, b) -> R(b, a)")
        cache = ResultCache()
        budget = Budget(max_steps=3)
        standard = InferenceService(cache, variant=ChaseVariant.STANDARD)
        first = standard.run_batch([diverging], [target], budget=budget)
        assert first.outcomes[0].status is InferenceStatus.UNKNOWN
        racing = InferenceService(cache, race_variants=True)
        second = racing.run_batch([diverging], [target], budget=budget)
        assert second.stats.cache_hits == 0 and second.stats.executed == 1

    def test_broad_unknown_survives_narrower_budget_rerecord(self):
        """Regression: a narrow re-record must not downgrade a broad UNKNOWN."""
        broad, narrow = Budget(max_steps=100), Budget(max_steps=5)
        cache = ResultCache()
        cache.record("q", self._unknown_outcome(broad), broad)
        cache.record("q", self._unknown_outcome(narrow), narrow)
        # A request the broad entry covers still hits — before the fix the
        # narrow re-record overwrote it and this was a stale miss forever.
        entry = cache.lookup("q", Budget(max_steps=100))
        assert entry is not None
        assert entry.budget.max_steps == 100

    def test_broad_variant_set_survives_narrower_rerecord(self):
        budget = Budget(max_steps=5)
        cache = ResultCache()
        cache.record(
            "q",
            self._unknown_outcome(budget),
            budget,
            variants=("standard", "semi_naive"),
        )
        cache.record("q", self._unknown_outcome(budget), budget, variants=("standard",))
        entry = cache.lookup("q", budget, variants=("standard", "semi_naive"))
        assert entry is not None
        assert set(entry.variants) == {"standard", "semi_naive"}

    def test_merge_accumulates_per_variant_budgets(self):
        cache = ResultCache()
        cache.record(
            "q",
            self._unknown_outcome(Budget(max_steps=100)),
            Budget(max_steps=100),
            variants=("standard",),
        )
        cache.record(
            "q",
            self._unknown_outcome(Budget(max_steps=10)),
            Budget(max_steps=10),
            variants=("semi_naive",),
        )
        # Knowledge accumulated: both recordings survive, each variant
        # remembering the budget its chase actually ran under.
        entry = cache.lookup(
            "q", Budget(max_steps=10), variants=("standard", "semi_naive")
        )
        assert entry is not None
        assert set(entry.variants) == {"standard", "semi_naive"}
        assert [b.max_steps for b in entry.tried()["standard"]] == [100]
        assert [b.max_steps for b in entry.tried()["semi_naive"]] == [10]
        # Serving stays per-variant honest: standard alone is known up
        # to 100 steps, but both variants together only up to 10.
        assert cache.lookup("q", Budget(max_steps=100), variants=("standard",))

    def test_merge_never_claims_untried_budget_variant_combinations(self):
        """The merge must not serve UNKNOWN for work nobody did.

        After standard@100 and semi_naive@10, a request for both
        variants at 50 steps must be a stale miss — a 50-step SEMI_NAIVE
        chase never ran and might be decisive. Recording that retry then
        converges instead of looping.
        """
        cache = ResultCache()
        cache.record(
            "q",
            self._unknown_outcome(Budget(max_steps=100)),
            Budget(max_steps=100),
            variants=("standard",),
        )
        cache.record(
            "q",
            self._unknown_outcome(Budget(max_steps=10)),
            Budget(max_steps=10),
            variants=("semi_naive",),
        )
        request = Budget(max_steps=50)
        assert cache.lookup("q", request, variants=("standard", "semi_naive")) is None
        # The retry records both variants at 50; the standard variant
        # keeps its broader 100-step knowledge through the merge...
        cache.record(
            "q",
            self._unknown_outcome(request),
            request,
            variants=("standard", "semi_naive"),
        )
        entry = cache.lookup("q", request, variants=("standard", "semi_naive"))
        assert entry is not None
        assert [b.max_steps for b in entry.tried()["standard"]] == [100]
        assert [b.max_steps for b in entry.tried()["semi_naive"]] == [50]
        # ...and the identical request now hits instead of re-chasing.
        assert cache.stats.stale == 1

    def test_incomparable_budgets_accumulate_and_all_clients_hit(self):
        """Regression: clients with incomparable budgets must not make
        each other's recordings vanish and alternate re-chasing forever.

        Client A uses (100 steps, 10 s); client B uses (5 steps, 50 s).
        Neither covers the other, so the variant keeps *both* chased
        budgets; after one chase each, both clients hit every time.
        """
        budget_a = Budget(max_steps=100, max_seconds=10.0)
        budget_b = Budget(max_steps=5, max_seconds=50.0)
        cache = ResultCache()
        cache.record("q", self._unknown_outcome(budget_a), budget_a)
        assert cache.lookup("q", budget_b, variants=("standard",)) is None
        cache.record("q", self._unknown_outcome(budget_b), budget_b)
        # Both recordings survive side by side...
        entry = cache.lookup("q", budget_a, variants=("standard",))
        assert entry is not None
        assert len(entry.tried()["standard"]) == 2
        # ...so both clients' identical re-requests are hits, not the
        # alternating stale misses a keep-one policy would produce.
        assert cache.lookup("q", budget_b, variants=("standard",)) is not None
        assert cache.lookup("q", budget_a, variants=("standard",)) is not None
        assert cache.stats.stale == 1  # only B's first-ever request

    def test_covering_budget_prunes_dominated_antichain_entries(self):
        narrow = Budget(max_steps=10, max_seconds=5.0)
        wide = Budget(max_steps=100, max_seconds=50.0)
        cache = ResultCache()
        cache.record("q", self._unknown_outcome(narrow), narrow)
        cache.record("q", self._unknown_outcome(wide), wide)
        entry = cache.lookup("q", narrow, variants=("standard",))
        # The covering recording subsumed the narrow one: no pile-up.
        assert [b.max_steps for b in entry.tried()["standard"]] == [100]

    def test_merged_unknown_survives_a_disk_round_trip(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        broad, narrow = Budget(max_steps=100), Budget(max_steps=5)
        cache = ResultCache(store=JsonLinesStore(path))
        cache.record("q", self._unknown_outcome(broad), broad, variants=("standard",))
        cache.record(
            "q", self._unknown_outcome(narrow), narrow, variants=("semi_naive",)
        )
        # A fresh process reloads the *merged* knowledge (later lines
        # win, and the appended line carries the per-variant budgets,
        # not just the narrow record).
        reloaded = ResultCache(store=JsonLinesStore(path))
        entry = reloaded.lookup("q", Budget(max_steps=100), variants=("standard",))
        assert entry is not None
        assert set(entry.variants) == {"standard", "semi_naive"}
        assert [b.max_steps for b in entry.tried()["standard"]] == [100]
        assert [b.max_steps for b in entry.tried()["semi_naive"]] == [5]
        # Per-variant honesty survives the reload too.
        assert (
            reloaded.lookup(
                "q", Budget(max_steps=100), variants=("standard", "semi_naive")
            )
            is None
        )

    def test_subsumed_rerecord_appends_nothing_to_disk(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        broad, narrow = Budget(max_steps=100), Budget(max_steps=5)
        cache = ResultCache(store=JsonLinesStore(path))
        cache.record("q", self._unknown_outcome(broad), broad)
        lines_before = path.read_text().count("\n")
        cache.record("q", self._unknown_outcome(narrow), narrow)
        assert path.read_text().count("\n") == lines_before

    def test_service_does_not_rechase_after_narrow_rerecord(self):
        """End to end: identical queries keep hitting after a downgrade attempt."""
        from repro.service import InferenceService

        diverging = parse_td("R(x, y) -> R(y, z)")
        target = parse_td("R(a, b) -> R(b, a)")
        cache = ResultCache()
        service = InferenceService(cache)
        broad, narrow = Budget(max_steps=50), Budget(max_steps=5)
        service.run_batch([diverging], [target], budget=broad)
        # A narrower client re-records its own UNKNOWN... (the cache serves
        # the covered request, so force the narrow recording directly)
        from repro.chase.implication import implies

        cache.record(
            service.submit([diverging], target),
            implies([diverging], target, budget=narrow),
            narrow,
        )
        service._pending.clear()
        # ...and the broad client's identical re-run still hits.
        again = service.run_batch([diverging], [target], budget=broad)
        assert again.stats.cache_hits == 1
        assert again.stats.executed == 0

    def test_retry_overwrites_the_unknown(self, transitivity, provable_target):
        cache = ResultCache()
        tight = Budget(max_steps=1)
        unknown = implies([transitivity], provable_target, budget=tight)
        assert unknown.status is InferenceStatus.UNKNOWN
        cache.record("q", unknown, tight)
        proved = implies([transitivity], provable_target)
        cache.record("q", proved, Budget())
        entry = cache.lookup("q", Budget())
        assert entry.status is InferenceStatus.PROVED


class TestTracePolicy:
    def test_traceless_proved_is_stale_for_trace_wanting_callers(
        self, transitivity, provable_target
    ):
        bare = implies([transitivity], provable_target, record_trace=False)
        assert bare.status is InferenceStatus.PROVED
        cache = ResultCache()
        cache.record("q", bare, Budget(), traced=False)
        # A caller content without certificates gets the hit...
        assert cache.lookup("q", Budget()) is not None
        # ...but a certificate-wanting caller recomputes.
        assert cache.lookup("q", Budget(), require_trace=True) is None
        assert cache.stats.stale == 1

    def test_traceless_service_hit_is_upgraded_by_tracing_service(
        self, transitivity, provable_target
    ):
        from repro.service import InferenceService

        cache = ResultCache()
        bare = InferenceService(cache, record_trace=False)
        bare.run_batch([transitivity], [provable_target])
        full = InferenceService(cache)  # record_trace=True by default
        report = full.run_batch([transitivity], [provable_target])
        assert report.stats.cache_hits == 0 and report.stats.executed == 1
        outcome = report.outcomes[0]
        assert outcome.chase_result.steps  # certificate present again
        # And the upgraded entry now serves certificate-wanting callers.
        warm = full.run_batch([transitivity], [provable_target])
        assert warm.stats.cache_hits == 1


class TestLru:
    def test_eviction_drops_least_recently_used(
        self, transitivity, refutable_target
    ):
        outcome = implies([transitivity], refutable_target)
        cache = ResultCache(maxsize=2)
        budget = Budget()
        cache.record("a", outcome, budget)
        cache.record("b", outcome, budget)
        assert cache.lookup("a", budget) is not None  # refresh "a"
        cache.record("c", outcome, budget)  # evicts "b"
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.stats.evictions == 1


    def test_load_time_evictions_do_not_inflate_lifetime_stats(
        self, tmp_path, transitivity, refutable_target
    ):
        path = tmp_path / "cache.jsonl"
        outcome = implies([transitivity], refutable_target)
        writer = ResultCache(store=JsonLinesStore(path))
        for index in range(5):
            writer.record(f"q{index}", outcome, Budget())
        # Reload into a cache too small for the store: the overflow is
        # load churn, not serving behaviour.
        reloaded = ResultCache(maxsize=2, store=JsonLinesStore(path))
        assert reloaded.stats.evictions == 0
        assert reloaded.stats.load_evictions == 3
        # Serving evictions still count from zero.
        reloaded.record("fresh", outcome, Budget())
        assert reloaded.stats.evictions == 1
        assert reloaded.stats.load_evictions == 3


class TestDiskStore:
    def test_verdicts_survive_the_process(
        self, tmp_path, transitivity, provable_target
    ):
        path = tmp_path / "cache.jsonl"
        outcome = implies([transitivity], provable_target)
        fingerprint = _fingerprint([transitivity], provable_target)
        first = ResultCache(store=JsonLinesStore(path))
        first.record(fingerprint, outcome, Budget())

        # A fresh cache (fresh "process") reloads the verdict from disk.
        second = ResultCache(store=JsonLinesStore(path))
        entry = second.lookup(fingerprint, Budget())
        assert entry is not None
        assert entry.outcome().status is InferenceStatus.PROVED

    def test_corrupt_lines_are_skipped_not_fatal(
        self, tmp_path, transitivity, provable_target
    ):
        path = tmp_path / "cache.jsonl"
        outcome = implies([transitivity], provable_target)
        first = ResultCache(store=JsonLinesStore(path))
        first.record("good", outcome, Budget())
        # Simulate a torn append and a hand-mangled record.
        with path.open("a") as handle:
            handle.write('{"fingerprint": "torn", "status": "pro')
            handle.write("\n")
            handle.write('{"fingerprint": "partial", "status": "proved"}\n')
        reloaded = ResultCache(store=JsonLinesStore(path))
        assert reloaded.lookup("good", Budget()) is not None
        assert "torn" not in reloaded and "partial" not in reloaded

    def test_unknown_never_demotes_a_decisive_verdict(
        self, tmp_path, transitivity, provable_target
    ):
        path = tmp_path / "cache.jsonl"
        cache = ResultCache(store=JsonLinesStore(path))
        proved = implies([transitivity], provable_target)
        cache.record("q", proved, Budget())
        tight = Budget(max_steps=1)
        unknown = implies([transitivity], provable_target, budget=tight)
        assert unknown.status is InferenceStatus.UNKNOWN
        cache.record("q", unknown, tight)
        # The decisive verdict survives, in memory and on disk.
        assert cache.lookup("q", Budget()).status is InferenceStatus.PROVED
        reloaded = ResultCache(store=JsonLinesStore(path))
        assert reloaded.lookup("q", Budget()).status is InferenceStatus.PROVED

    def test_later_lines_override_earlier(self, tmp_path, transitivity, provable_target):
        path = tmp_path / "cache.jsonl"
        store = JsonLinesStore(path)
        tight = Budget(max_steps=1)
        unknown = implies([transitivity], provable_target, budget=tight)
        proved = implies([transitivity], provable_target)
        first = ResultCache(store=store)
        first.record("q", unknown, tight)
        first.record("q", proved, Budget())

        reloaded = ResultCache(store=JsonLinesStore(path))
        assert reloaded.lookup("q", Budget()).status is InferenceStatus.PROVED


class TestCompaction:
    """The disk tier's last-wins compaction (ResultCache.close)."""

    def _cache_state(self, cache):
        """Everything staleness and serving read, per fingerprint."""
        return {
            fingerprint: (
                entry.status,
                entry.traced,
                tuple(entry.variants),
                entry.tried(),
            )
            for fingerprint, entry in cache._entries.items()
        }

    def _grow_file(self, path, transitivity, provable_target, refutable_target):
        """A store with merged UNKNOWN re-records and decisive upgrades."""
        store = JsonLinesStore(path)
        cache = ResultCache(store=store)
        # Incomparable UNKNOWN budgets accumulate (each appends a line).
        for budget in (
            Budget(max_steps=1, max_rows=None, max_seconds=None),
            Budget(max_steps=None, max_rows=3, max_seconds=None),
            Budget(max_steps=1, max_rows=None, max_seconds=0.0),
        ):
            unknown = implies([transitivity], provable_target, budget=Budget(max_steps=1))
            cache.record("merged-unknown", unknown, budget)
        # An UNKNOWN later upgraded to a decisive verdict.
        tight = Budget(max_steps=1)
        cache.record(
            "upgraded",
            implies([transitivity], provable_target, budget=tight),
            tight,
        )
        cache.record("upgraded", implies([transitivity], provable_target), Budget())
        # A plain decisive verdict, re-recorded (last wins, same content).
        disproved = implies([transitivity], refutable_target)
        cache.record("decisive", disproved, Budget())
        cache.record("decisive", disproved, Budget())
        return store, cache

    def test_compacted_file_reloads_to_identical_state(
        self, tmp_path, transitivity, provable_target, refutable_target
    ):
        path = tmp_path / "cache.jsonl"
        store, cache = self._grow_file(
            path, transitivity, provable_target, refutable_target
        )
        lines_before = store.line_count()
        assert lines_before > 3  # the file really did grow past its content
        before = self._cache_state(ResultCache(store=JsonLinesStore(path)))

        assert cache.close(force_compact=True) is True
        assert store.line_count() == 3  # one line per fingerprint
        after_cache = ResultCache(store=JsonLinesStore(path))
        assert self._cache_state(after_cache) == before

        # The merged UNKNOWN antichain still serves incomparable budgets.
        assert (
            after_cache.lookup("merged-unknown", Budget(max_steps=1, max_rows=None, max_seconds=None))
            is not None
        )
        assert (
            after_cache.lookup("merged-unknown", Budget(max_steps=None, max_rows=2, max_seconds=None))
            is not None
        )
        assert after_cache.lookup("upgraded", Budget()).status is InferenceStatus.PROVED
        assert after_cache.lookup("decisive", Budget()).status is InferenceStatus.DISPROVED

    def test_hostile_downgrade_line_is_dropped_by_compaction(
        self, tmp_path, transitivity, provable_target
    ):
        path = tmp_path / "cache.jsonl"
        store = JsonLinesStore(path)
        cache = ResultCache(store=store)
        cache.record("q", implies([transitivity], provable_target), Budget())
        tight = Budget(max_steps=1)
        unknown = implies([transitivity], provable_target, budget=tight)
        # Hand-append what the live cache would have refused to write.
        entry = ResultCache().record("q", unknown, tight)
        store.append(entry)
        cache.close(force_compact=True)
        reloaded = ResultCache(store=JsonLinesStore(path))
        assert reloaded.lookup("q", Budget()).status is InferenceStatus.PROVED

    def test_close_size_trigger(self, tmp_path, transitivity, provable_target):
        path = tmp_path / "cache.jsonl"
        store = JsonLinesStore(path)
        cache = ResultCache(store=store, compact_min_lines=4)
        tight = Budget(max_steps=1)
        # One fingerprint, four incomparable recordings: 4 lines, 1 live.
        for limit in (1, 2, 3, 4):
            unknown = implies([transitivity], provable_target, budget=tight)
            cache.record(
                "q", unknown, Budget(max_steps=limit, max_rows=10**limit)
            )
        assert store.line_count() == 4
        assert cache.close() is True
        assert store.line_count() == 1

    def test_close_leaves_small_files_alone(
        self, tmp_path, transitivity, refutable_target
    ):
        path = tmp_path / "cache.jsonl"
        store = JsonLinesStore(path)
        cache = ResultCache(store=store)  # default trigger: 256 lines
        cache.record("q", implies([transitivity], refutable_target), Budget())
        assert cache.close() is False
        assert store.line_count() == 1

    def test_close_without_store_is_a_noop(self):
        assert ResultCache().close() is False

    def test_fold_preserves_recency_order_for_bounded_reloads(
        self, tmp_path, transitivity, provable_target, refutable_target
    ):
        """A re-record must move its fingerprint to MRU in the fold, as
        `_insert` does live — otherwise compaction changes which entries
        a bounded cache evicts at load time."""
        from repro.service.cache import fold_entries

        path = tmp_path / "cache.jsonl"
        store = JsonLinesStore(path)
        cache = ResultCache(store=store)
        proved = implies([transitivity], provable_target)
        disproved = implies([transitivity], refutable_target)
        cache.record("a", proved, Budget())
        cache.record("b", disproved, Budget())
        cache.record("a", proved, Budget())  # touch: a is now MRU
        folded = fold_entries(store.load())
        assert list(folded) == ["b", "a"]

"""Property-based tests for the chase engine's invariants."""

from hypothesis import given, settings

from repro.chase.budget import Budget
from repro.chase.engine import chase, replay
from repro.chase.result import ChaseStatus

from tests.properties.strategies import schema_td_instance


@given(schema_td_instance())
@settings(max_examples=40, deadline=None)
def test_terminated_chase_satisfies_dependency(data):
    """Fixpoint => model. The fundamental chase invariant."""
    __, td, instance = data
    result = chase(instance, [td], budget=Budget(max_steps=200, max_seconds=10))
    if result.status is ChaseStatus.TERMINATED:
        assert td.holds_in(result.instance)


@given(schema_td_instance())
@settings(max_examples=40, deadline=None)
def test_chase_only_adds_rows(data):
    """The chase is monotone: the input is preserved."""
    __, td, instance = data
    result = chase(instance, [td], budget=Budget(max_steps=100, max_seconds=10))
    assert instance.rows <= result.instance.rows


@given(schema_td_instance())
@settings(max_examples=40, deadline=None)
def test_trace_replays_to_same_instance(data):
    """The recorded trace is a faithful, verifying certificate."""
    __, td, instance = data
    result = chase(instance, [td], budget=Budget(max_steps=60, max_seconds=10))
    replayed = replay(instance, result.steps)
    assert replayed.rows == result.instance.rows


@given(schema_td_instance())
@settings(max_examples=40, deadline=None)
def test_full_td_chase_always_terminates(data):
    """Full TDs invent no values, so the chase must reach a fixpoint."""
    __, td, instance = data
    if not td.is_full():
        return
    result = chase(instance, [td], budget=Budget(max_steps=10_000, max_seconds=20))
    assert result.status is ChaseStatus.TERMINATED


@given(schema_td_instance())
@settings(max_examples=40, deadline=None)
def test_chase_idempotent_on_models(data):
    """Chasing a model of the dependency changes nothing."""
    __, td, instance = data
    if not td.holds_in(instance):
        return
    result = chase(instance, [td], budget=Budget(max_steps=100, max_seconds=10))
    assert result.status is ChaseStatus.TERMINATED
    assert result.instance.rows == instance.rows


@given(schema_td_instance())
@settings(max_examples=40, deadline=None)
def test_semi_naive_agrees_with_standard(data):
    """Delta-driven enumeration changes nothing observable (full TDs:
    equal fixpoints; embedded: both terminate or both don't within the
    same generous budget, with homomorphically equivalent results)."""
    from repro.chase.engine import ChaseVariant
    from repro.relational.core import homomorphically_equivalent

    __, td, instance = data
    budget = Budget(max_steps=80, max_seconds=10)
    standard = chase(instance, [td], budget=budget)
    semi = chase(instance, [td], variant=ChaseVariant.SEMI_NAIVE, budget=budget)
    if (
        standard.status is ChaseStatus.TERMINATED
        and semi.status is ChaseStatus.TERMINATED
    ):
        if td.is_full():
            assert semi.instance.rows == standard.instance.rows
        elif len(standard.instance) <= 12 and len(semi.instance) <= 12:
            assert homomorphically_equivalent(standard.instance, semi.instance)


@given(schema_td_instance())
@settings(max_examples=30, deadline=None)
def test_weak_acyclicity_guarantee(data):
    """Weakly acyclic single TDs terminate within a generous budget."""
    from repro.chase.termination import is_weakly_acyclic

    __, td, instance = data
    if not is_weakly_acyclic([td]):
        return
    result = chase(instance, [td], budget=Budget(max_steps=5_000, max_seconds=20))
    assert result.status is ChaseStatus.TERMINATED


@given(schema_td_instance())
@settings(max_examples=30, deadline=None)
def test_satisfied_instances_stay_satisfied_under_product(data):
    """TDs are preserved under direct products (Horn preservation)."""
    from repro.relational.product import direct_product

    __, td, instance = data
    if not td.holds_in(instance) or len(instance) > 4:
        return
    squared = direct_product(instance, instance)
    assert td.holds_in(squared)

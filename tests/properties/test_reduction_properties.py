"""Property-based tests for the reduction's structural guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dependencies.classify import summarize
from repro.reduction.bridge import bridge_instance
from repro.reduction.encode import encode
from repro.reduction.schema import ReductionSchema
from repro.semigroups.presentation import Equation, Presentation
from repro.workloads.instances import negative_family

LETTERS = ["A0", "X1", "X2", "X3", "0"]


@st.composite
def small_presentations(draw):
    """Random short-form presentations with zero equations."""
    letter_count = draw(st.integers(min_value=0, max_value=3))
    letters = ["A0"] + [f"X{index + 1}" for index in range(letter_count)] + ["0"]
    extra_count = draw(st.integers(min_value=0, max_value=3))
    extras = []
    for __ in range(extra_count):
        lhs = tuple(
            letters[draw(st.integers(min_value=0, max_value=len(letters) - 1))]
            for __i in range(2)
        )
        rhs = (letters[draw(st.integers(min_value=0, max_value=len(letters) - 1))],)
        extras.append(Equation(lhs, rhs))
    return Presentation.with_zero_equations(letters, extras)


@given(small_presentations())
@settings(max_examples=30, deadline=None)
def test_encoding_size_formulas(presentation):
    """|attributes| = 2n+2 and |D| = 4|E| for every presentation."""
    encoding = encode(presentation)
    n = len(encoding.presentation.alphabet)
    assert encoding.attribute_count == 2 * n + 2
    assert encoding.dependency_count == 4 * len(encoding.presentation.equations)


@given(small_presentations())
@settings(max_examples=30, deadline=None)
def test_antecedent_bound_holds_universally(presentation):
    """Every encoded dependency has at most five antecedents."""
    encoding = encode(presentation)
    summary = summarize(encoding.dependencies + [encoding.d0])
    assert summary.max_antecedents <= 5
    assert summary.typed


@given(small_presentations())
@settings(max_examples=30, deadline=None)
def test_encoded_triviality_pattern(presentation):
    """D1/D4 are never trivial; D2 (resp. D3) is trivial exactly when the
    equation's first (resp. second) left letter equals the right letter —
    for A = C the C-apex already is the A-apex D2 asserts (degenerate
    zero equations like 0.X = 0 hit this), which is sound: trivial
    dependencies hold in every database.
    """
    encoding = encode(presentation)
    for equation, (d1, d2, d3, d4) in encoding.by_equation.items():
        letter_a, letter_b = equation.lhs
        letter_c = equation.rhs[0]
        assert not d1.is_trivial()
        assert not d4.is_trivial()
        assert d2.is_trivial() == (letter_a == letter_c)
        assert d3.is_trivial() == (letter_b == letter_c)
    assert not encoding.d0.is_trivial()


@given(st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=6))
@settings(max_examples=40, deadline=None)
def test_bridge_size_formula(letter_indices):
    """A bridge for a k-letter word has exactly 2k+1 tuples, all typed."""
    schema = ReductionSchema(("A0", "X1", "0"))
    word = tuple(("A0", "X1", "0")[index] for index in letter_indices)
    instance, bridge = bridge_instance(schema, word)
    assert bridge.tuple_count == 2 * len(word) + 1
    assert len(instance) == bridge.tuple_count
    instance.validate()


@given(st.integers(min_value=0, max_value=2))
@settings(max_examples=3, deadline=None)
def test_negative_family_verifies_direction_b(extra):
    """Direction (B) holds across the scaled negative family."""
    from repro.reduction.theorem import prove_direction_b

    report = prove_direction_b(negative_family(extra))
    assert report.report.ok

"""Property-based tests for dependency structure and diagrams."""

from hypothesis import given, settings

from repro.chase.implication import InferenceStatus, implies
from repro.chase.budget import Budget
from repro.dependencies.diagram import diagram_of
from repro.dependencies.parser import parse_td

from tests.properties.strategies import schema_td_instance, typed_tds


@given(typed_tds())
@settings(max_examples=60, deadline=None)
def test_diagram_round_trip(td):
    """diagram_of . to_dependency is the identity up to renaming."""
    rebuilt = diagram_of(td).to_dependency()
    assert rebuilt.structurally_equal(td)


@given(typed_tds())
@settings(max_examples=60, deadline=None)
def test_universal_existential_partition(td):
    """Universal and existential variables partition the variable set."""
    universal = td.universal_variables()
    existential = td.existential_variables()
    assert universal | existential == td.variables()
    assert not universal & existential


@given(typed_tds())
@settings(max_examples=60, deadline=None)
def test_full_iff_not_embedded(td):
    assert td.is_full() != td.is_embedded()


@given(typed_tds())
@settings(max_examples=60, deadline=None)
def test_str_parse_round_trip(td):
    reparsed = parse_td(str(td), td.schema)
    assert reparsed.structurally_equal(td)


@given(typed_tds())
@settings(max_examples=30, deadline=None)
def test_every_td_implies_itself(td):
    outcome = implies([td], td, budget=Budget(max_steps=50, max_seconds=5))
    assert outcome.status is InferenceStatus.PROVED


@given(typed_tds())
@settings(max_examples=60, deadline=None)
def test_canonical_form_stable(td):
    canonical = td.canonical()
    assert canonical.canonical() == canonical
    assert canonical.structurally_equal(td)


@given(schema_td_instance())
@settings(max_examples=40, deadline=None)
def test_trivial_tds_hold_everywhere(data):
    """is_trivial() really does mean valid in every database."""
    __, td, instance = data
    if td.is_trivial():
        assert td.holds_in(instance)


@given(schema_td_instance())
@settings(max_examples=40, deadline=None)
def test_violation_witness_is_genuine(data):
    """find_violation's witness maps every antecedent into the instance
    and no conclusion extension exists for it."""
    from repro.dependencies.template import is_variable
    from repro.relational.homomorphism import (
        extend_homomorphism,
        is_homomorphism,
    )

    __, td, instance = data
    witness = td.find_violation(instance)
    if witness is None:
        return
    assert is_homomorphism(witness, td.antecedents, instance, flexible=is_variable)
    assert (
        extend_homomorphism(witness, [td.conclusion], instance, flexible=is_variable)
        is None
    )

"""Property-based tests for the semigroup substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semigroups.construct import (
    adjoin_identity,
    adjoin_zero,
    free_nilpotent,
    monogenic,
    null_semigroup,
)
from repro.semigroups.presentation import Equation, Presentation
from repro.semigroups.rewriting import find_derivation
from repro.semigroups.search import _iter_all_tables
from repro.semigroups.words import word

INDICES = st.integers(min_value=2, max_value=6)


@given(INDICES)
@settings(max_examples=10, deadline=None)
def test_nilpotent_semigroups_satisfy_paper_profile(index):
    """zero, no identity, cancellation: the Main Lemma's second set."""
    semigroup = free_nilpotent(index)
    assert semigroup.zero() is not None
    assert not semigroup.has_identity()
    assert semigroup.has_cancellation_property()


@given(INDICES)
@settings(max_examples=10, deadline=None)
def test_adjoin_identity_preserves_cancellation(index):
    """The paper's lemma inside the proof of (B), over a family."""
    base = free_nilpotent(index)
    extended = adjoin_identity(base)
    assert extended.has_identity()
    assert extended.has_cancellation_property()


@given(st.integers(min_value=1, max_value=5))
@settings(max_examples=10, deadline=None)
def test_adjoin_zero_creates_zero(size):
    extended = adjoin_zero(null_semigroup(size))
    assert extended.zero() == extended.size - 1


@given(st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=4))
@settings(max_examples=16, deadline=None)
def test_monogenic_is_associative_by_construction(index, period):
    assert monogenic(index, period).is_associative()


def test_all_exhaustive_tables_have_detected_structure():
    """zero/identity detection agrees with brute force on all size-2 tables."""
    for semigroup in _iter_all_tables(2):
        size = semigroup.size
        brute_zero = next(
            (
                z
                for z in range(size)
                if all(
                    semigroup.product(z, x) == z and semigroup.product(x, z) == z
                    for x in range(size)
                )
            ),
            None,
        )
        assert semigroup.zero() == brute_zero


@given(st.integers(min_value=0, max_value=10))
@settings(max_examples=10, deadline=None)
def test_derivations_are_symmetric(seed):
    """If u derives to v, then v derives to u (replacements invert)."""
    presentation = Presentation.with_zero_equations(
        ["A0", "0"],
        [Equation.make(["A0", "A0"], ["0"])],
    )
    source = word(["A0", "A0"]) if seed % 2 else word(["A0"])
    target = word(["0"])
    forward = find_derivation(presentation, source, target, max_length=4)
    backward = find_derivation(presentation, target, source, max_length=4)
    assert (forward is None) == (backward is None)
    if forward is not None:
        backward.validate(presentation)


@given(st.integers(min_value=2, max_value=4))
@settings(max_examples=6, deadline=None)
def test_normalisation_preserves_positivity(copies):
    """A0^k = A0 and A0^k = 0 force A0 = 0 for every k >= 2, before and
    after short-form normalisation."""
    presentation = Presentation.with_zero_equations(
        ["A0", "0"],
        [
            Equation.make(["A0"] * copies, ["A0"]),
            Equation.make(["A0"] * copies, ["0"]),
        ],
    )
    normalized = presentation.normalized()
    assert normalized.is_short_form()
    derivation = find_derivation(
        normalized, ("A0",), ("0",), max_length=copies + 4
    )
    assert derivation is not None

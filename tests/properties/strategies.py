"""Shared hypothesis strategies for the property-based tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.dependencies.template import TemplateDependency, Variable
from repro.relational.instance import Instance
from repro.relational.schema import Schema
from repro.relational.values import Const

#: Keep arities and sizes small: the properties are about structure, not
#: scale, and homomorphism search is exponential in the worst case.
ARITIES = st.integers(min_value=1, max_value=3)


@st.composite
def schemas(draw) -> Schema:
    arity = draw(ARITIES)
    return Schema([f"A{index}" for index in range(arity)])


@st.composite
def typed_instances(draw, schema: Schema | None = None, max_rows: int = 6) -> Instance:
    """Random typed instances: column c draws from its own constant pool."""
    if schema is None:
        schema = draw(schemas())
    rows = draw(
        st.lists(
            st.tuples(
                *[
                    st.integers(min_value=0, max_value=2)
                    for __ in range(schema.arity)
                ]
            ),
            min_size=0,
            max_size=max_rows,
        )
    )
    return Instance(
        schema,
        (
            tuple(Const((f"c{column}", value)) for column, value in enumerate(row))
            for row in rows
        ),
    )


@st.composite
def typed_tds(draw, schema: Schema | None = None) -> TemplateDependency:
    """Random typed TDs: per-column variable pools, random conclusion."""
    if schema is None:
        schema = draw(schemas())
    antecedent_count = draw(st.integers(min_value=1, max_value=3))
    pools = [
        [Variable(f"c{column}v{index}") for index in range(2)]
        for column in range(schema.arity)
    ]
    antecedents = []
    for __ in range(antecedent_count):
        atom = tuple(
            pools[column][draw(st.integers(min_value=0, max_value=1))]
            for column in range(schema.arity)
        )
        antecedents.append(atom)
    used = [
        sorted(
            {atom[column] for atom in antecedents},
            key=lambda variable: variable.name,
        )
        for column in range(schema.arity)
    ]
    conclusion = []
    for column in range(schema.arity):
        existential = draw(st.booleans())
        if existential or not used[column]:
            conclusion.append(Variable(f"c{column}star"))
        else:
            pick = draw(st.integers(min_value=0, max_value=len(used[column]) - 1))
            conclusion.append(used[column][pick])
    return TemplateDependency(schema, antecedents, tuple(conclusion))


@st.composite
def schema_td_instance(draw):
    """A schema with a TD and an instance over it."""
    schema = draw(schemas())
    td = draw(typed_tds(schema=schema))
    instance = draw(typed_instances(schema=schema))
    return schema, td, instance

"""Property-based tests: JSON codecs round-trip exactly."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io.json_codec import (
    dependency_from_json,
    dependency_to_json,
    instance_from_json,
    instance_to_json,
    presentation_from_json,
    presentation_to_json,
    value_from_json,
    value_to_json,
)
from repro.relational.values import Const, LabeledNull

from tests.properties.strategies import typed_instances, typed_tds

# Constant names as they actually occur in the library: scalars, nested
# tuples of scalars, and pair-values (direct products).
scalar_names = st.one_of(st.text(max_size=8), st.integers(), st.booleans())
constant_names = st.recursive(
    scalar_names,
    lambda inner: st.tuples(inner, inner),
    max_leaves=4,
)
values = st.one_of(
    constant_names.map(Const),
    st.integers(min_value=0, max_value=10_000).map(LabeledNull),
)


def through_json(payload):
    return json.loads(json.dumps(payload))


@given(values)
@settings(max_examples=100, deadline=None)
def test_value_round_trip(value):
    assert value_from_json(through_json(value_to_json(value))) == value


@given(st.tuples(values, values))
@settings(max_examples=50, deadline=None)
def test_product_value_round_trip(pair):
    from repro.relational.product import pair_value

    value = pair_value(*pair)
    assert value_from_json(through_json(value_to_json(value))) == value


@given(typed_instances())
@settings(max_examples=50, deadline=None)
def test_instance_round_trip(instance):
    decoded = instance_from_json(through_json(instance_to_json(instance)))
    assert decoded == instance


@given(typed_tds())
@settings(max_examples=50, deadline=None)
def test_dependency_round_trip(td):
    decoded = dependency_from_json(through_json(dependency_to_json(td)))
    assert decoded == td


@given(st.integers(min_value=0, max_value=3))
@settings(max_examples=4, deadline=None)
def test_presentation_round_trip(extra):
    from repro.workloads.instances import negative_family

    presentation = negative_family(extra)
    decoded = presentation_from_json(
        through_json(presentation_to_json(presentation))
    )
    assert decoded.alphabet == presentation.alphabet
    assert decoded.equations == presentation.equations

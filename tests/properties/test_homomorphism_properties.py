"""Property-based tests for homomorphism search."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.homomorphism import (
    apply_assignment,
    find_homomorphism,
    is_homomorphism,
    iter_homomorphisms,
)
from repro.relational.values import LabeledNull

from tests.properties.strategies import typed_instances


@given(typed_instances())
@settings(max_examples=50, deadline=None)
def test_identity_embedding_always_exists(instance):
    """Every ground instance embeds into itself via the empty mapping."""
    found = find_homomorphism(instance.rows, instance)
    assert found == {}


@given(typed_instances())
@settings(max_examples=50, deadline=None)
def test_found_homomorphisms_are_homomorphisms(instance):
    """Whatever the search returns passes the independent checker."""
    if not instance:
        return
    # Replace one row's values by nulls and search for the pattern.
    row = next(iter(instance))
    pattern = tuple(LabeledNull(column) for column in range(len(row)))
    for assignment in iter_homomorphisms([pattern], instance):
        assert is_homomorphism(assignment, [pattern], instance)
        image = apply_assignment(pattern, assignment)
        assert image in instance


@given(typed_instances())
@settings(max_examples=50, deadline=None)
def test_single_null_pattern_match_count(instance):
    """A fully flexible single-atom pattern matches every row exactly once
    when all rows are distinct (they are: instances are sets)."""
    if not instance:
        return
    arity = instance.schema.arity
    pattern = tuple(LabeledNull(column) for column in range(arity))
    matches = [
        apply_assignment(pattern, assignment)
        for assignment in iter_homomorphisms([pattern], instance)
    ]
    assert sorted(map(repr, matches)) == sorted(map(repr, instance.rows))


@given(typed_instances(), st.integers(min_value=0, max_value=2))
@settings(max_examples=50, deadline=None)
def test_composition_closure(instance, seed_column):
    """h found from P into I, then P's image under h is inside I (functoriality
    of apply_assignment with respect to membership)."""
    if not instance or seed_column >= instance.schema.arity:
        return
    rows = list(instance.rows)[:2]
    patterns = [
        tuple(LabeledNull(index * 10 + column) for column in range(len(row)))
        for index, row in enumerate(rows)
    ]
    found = find_homomorphism(patterns, instance)
    assert found is not None
    for pattern in patterns:
        assert apply_assignment(pattern, found) in instance

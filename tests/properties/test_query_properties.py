"""Property-based tests for conjunctive queries: the homomorphism theorem
read semantically."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dependencies.template import Variable
from repro.relational.queries import ConjunctiveQuery
from repro.relational.schema import Schema

from tests.properties.strategies import typed_instances


@st.composite
def queries(draw, schema=None, max_atoms=3):
    """Random safe conjunctive queries over a small variable pool."""
    if schema is None:
        arity = draw(st.integers(min_value=1, max_value=2))
        schema = Schema([f"A{index}" for index in range(arity)])
    pool = [Variable(f"v{index}") for index in range(3)]
    atom_count = draw(st.integers(min_value=1, max_value=max_atoms))
    body = []
    for __ in range(atom_count):
        body.append(
            tuple(
                pool[draw(st.integers(min_value=0, max_value=2))]
                for __c in range(schema.arity)
            )
        )
    body_variables = sorted(
        {variable for atom in body for variable in atom},
        key=lambda variable: variable.name,
    )
    head_size = draw(st.integers(min_value=0, max_value=len(body_variables)))
    head = body_variables[:head_size]
    return ConjunctiveQuery(schema, head, body)


@st.composite
def query_pairs_with_instance(draw):
    arity = draw(st.integers(min_value=1, max_value=2))
    schema = Schema([f"A{index}" for index in range(arity)])
    first = draw(queries(schema=schema))
    second = draw(queries(schema=schema))
    instance = draw(typed_instances(schema=schema, max_rows=5))
    return first, second, instance


@given(query_pairs_with_instance())
@settings(max_examples=60, deadline=None)
def test_containment_implies_answer_inclusion(data):
    """The easy direction of Chandra-Merlin, on random instances."""
    first, second, instance = data
    if len(first.head) != len(second.head):
        return
    if first.is_contained_in(second):
        assert first.answers(instance) <= second.answers(instance)


@given(queries(), st.data())
@settings(max_examples=60, deadline=None)
def test_minimization_preserves_answers(query, data):
    minimal = query.minimized()
    assert minimal.is_equivalent_to(query)
    instance = data.draw(typed_instances(schema=query.schema, max_rows=5))
    assert minimal.answers(instance) == query.answers(instance)


@given(queries())
@settings(max_examples=60, deadline=None)
def test_minimized_is_no_larger(query):
    assert len(query.minimized().body) <= len(query.body)


@given(queries())
@settings(max_examples=60, deadline=None)
def test_self_containment(query):
    assert query.is_contained_in(query)


@given(queries())
@settings(max_examples=40, deadline=None)
def test_canonical_instance_answers_include_frozen_head(query):
    """Evaluating a query over its own canonical database returns the
    frozen head (the identity match) -- the heart of Chandra-Merlin."""
    canonical, assignment = query.canonical_instance()
    frozen_head = tuple(assignment[variable] for variable in query.head)
    assert frozen_head in query.answers(canonical)

"""Tests for the derivation calculus (repro.core.axioms)."""

import pytest

from repro.chase.implication import InferenceStatus, implies
from repro.core.axioms import (
    AxiomaticProof,
    augment,
    compose,
    derive,
    is_axiom,
    subsumes,
)
from repro.dependencies.parser import parse_td
from repro.dependencies.template import Variable
from repro.errors import VerificationError
from repro.relational.schema import Schema


@pytest.fixture
def schema():
    return Schema(["A", "B"])


@pytest.fixture
def transitivity(schema):
    return parse_td("R(x, y) & R(y, z) -> R(x, z)", schema)


class TestTriviality:
    def test_reflexive_td_is_axiom(self, schema):
        assert is_axiom(parse_td("R(x, y) -> R(x, y)", schema))

    def test_projection_with_existential_is_axiom(self, schema):
        assert is_axiom(parse_td("R(x, y) -> R(x, w)", schema))

    def test_transitivity_is_not_axiom(self, transitivity):
        assert not is_axiom(transitivity)


class TestSubsumption:
    def test_augmented_version_subsumed(self, schema, transitivity):
        augmented = parse_td(
            "R(x, y) & R(y, z) & R(u, v) -> R(x, z)", schema
        )
        assert subsumes(transitivity, augmented) is not None

    def test_variable_identification_subsumed(self, schema, transitivity):
        identified = parse_td("R(x, x) -> R(x, x)", schema)
        # transitivity with x=y=z: R(x,x) & R(x,x) -> R(x,x).
        assert subsumes(transitivity, identified) is not None

    def test_subsumption_is_sound(self, schema, transitivity):
        augmented = parse_td(
            "R(x, y) & R(y, z) & R(u, v) -> R(x, z)", schema
        )
        assert subsumes(transitivity, augmented) is not None
        assert implies([transitivity], augmented).status is InferenceStatus.PROVED

    def test_non_consequence_not_subsumed(self, schema, transitivity):
        symmetry = parse_td("R(x, y) -> R(y, x)", schema)
        assert subsumes(transitivity, symmetry) is None

    def test_existential_maps_to_existential(self, schema):
        general = parse_td("R(x, y) -> R(y, w)", schema)
        specific = parse_td("R(x, y) -> R(y, v)", schema)
        assert subsumes(general, specific) is not None

    def test_existential_cannot_map_to_universal_mismatch(self, schema):
        general = parse_td("R(x, y) -> R(y, w)", schema)
        stronger = parse_td("R(x, y) -> R(y, x)", schema)
        # R(y, x) pins the second column to a universal; the weaker
        # existential dependency must not subsume it.
        assert subsumes(general, stronger) is None

    def test_schema_mismatch(self, transitivity):
        other = parse_td("R(x, y, z) -> R(x, y, z)")
        assert subsumes(transitivity, other) is None


class TestComposition:
    def test_transitivity_self_composition(self, schema, transitivity):
        """Composing T with T yields consequences of {T} only."""
        for derived in compose(transitivity, transitivity):
            outcome = implies([transitivity], derived)
            assert outcome.status is InferenceStatus.PROVED

    def test_composition_through_conclusion(self, schema):
        """The tableau includes the first dependency's conclusion."""
        make_loop = parse_td("R(x, y) -> R(y, x)", schema)
        derived = list(compose(make_loop, make_loop))
        # Match the second copy against the concluded (y, x) atom:
        # derives R(x, y) -> R(x, y) among others.
        assert any(td.is_trivial() for td in derived)

    def test_composition_soundness_random(self):
        from repro.workloads.generators import random_td

        for seed in range(6):
            first = random_td(seed=seed, arity=2)
            second = random_td(seed=seed + 100, arity=2)
            for derived in list(compose(first, second))[:4]:
                outcome = implies([first, second], derived)
                assert outcome.status is InferenceStatus.PROVED

    def test_variable_capture_avoided(self, schema):
        first = parse_td("R(x, y) -> R(y, w)", schema)
        second = parse_td("R(w, y) -> R(y, w)", schema)
        for derived in compose(first, second):
            # All derived conclusions draw on first's variables or fresh
            # ones; second's 'w' was renamed apart.
            assert derived.schema == schema


class TestAugmentation:
    def test_augment_adds_antecedents(self, transitivity):
        u, v = Variable("u"), Variable("v")
        augmented = augment(transitivity, [(u, v)])
        assert len(augmented.antecedents) == 3

    def test_augment_sound(self, transitivity):
        u, v = Variable("u"), Variable("v")
        augmented = augment(transitivity, [(u, v)])
        assert implies([transitivity], augmented).status is InferenceStatus.PROVED

    def test_capture_rejected(self, schema):
        td = parse_td("R(x, y) -> R(y, w)", schema)
        w = Variable("w")
        u = Variable("u")
        with pytest.raises(VerificationError):
            augment(td, [(w, u)])


class TestDerive:
    def test_path_three_derivable(self, schema, transitivity):
        target = parse_td("R(x, y) & R(y, z) & R(z, w) -> R(x, w)", schema)
        proof = derive([transitivity], target)
        assert proof is not None
        proof.verify()
        assert proof.length >= 2  # two composition steps needed

    def test_trivial_target_closes_immediately(self, schema, transitivity):
        target = parse_td("R(x, y) -> R(x, y)", schema)
        proof = derive([transitivity], target)
        assert proof is not None
        assert proof.length == 0

    def test_non_consequence_not_derivable(self, schema, transitivity):
        symmetry = parse_td("R(x, y) -> R(y, x)", schema)
        assert derive([transitivity], symmetry, max_steps=30) is None

    def test_derivations_agree_with_chase(self, schema):
        """On a mixed suite, derive() and implies() agree."""
        deps = [
            parse_td("R(x, y) & R(y, z) -> R(x, z)", schema),
            parse_td("R(x, y) -> R(y, x)", schema),
        ]
        suite = [
            ("R(x, y) -> R(x, y)", True),
            ("R(x, y) & R(y, z) & R(z, w) -> R(w, x)", True),
            ("R(x, y) -> R(x, w)", True),
        ]
        for text, expected in suite:
            target = parse_td(text, schema)
            proof = derive(deps, target, max_steps=80)
            chased = implies(deps, target)
            assert (proof is not None) == expected
            assert (chased.status is InferenceStatus.PROVED) == expected

    def test_proof_verification_catches_tampering(self, schema, transitivity):
        target = parse_td("R(x, y) & R(y, z) & R(z, w) -> R(x, w)", schema)
        proof = derive([transitivity], target)
        tampered = AxiomaticProof(
            hypotheses=[],  # steps now use a non-hypothesis
            target=proof.target,
            steps=proof.steps,
            closing_substitution=proof.closing_substitution,
        )
        if proof.steps:
            with pytest.raises(VerificationError):
                tampered.verify()

    def test_embedded_hypotheses(self, schema):
        successor = parse_td("R(x, y) -> R(y, s)", schema)
        target = parse_td("R(x, y) & R(y, z) -> R(z, w)", schema)
        proof = derive([successor], target, max_steps=20)
        assert proof is not None
        proof.verify()

"""Unit tests for repro.core.inference (the facade)."""

import pytest

from repro.chase.budget import Budget
from repro.chase.implication import InferenceStatus
from repro.core.inference import Semantics, infer
from repro.dependencies.parser import parse_td
from repro.relational.schema import Schema


@pytest.fixture
def schema():
    return Schema(["A", "B"])


@pytest.fixture
def transitivity(schema):
    return parse_td("R(x, y) & R(y, z) -> R(x, z)", schema)


@pytest.fixture
def successor(schema):
    return parse_td("R(x, y) -> R(y, s)", schema)


class TestProved:
    def test_proved_under_both_semantics(self, schema, transitivity):
        target = parse_td("R(x, y) & R(y, z) & R(z, w) -> R(x, w)", schema)
        for semantics in Semantics:
            report = infer([transitivity], target, semantics=semantics)
            assert report.proved
            assert report.semantics is semantics

    def test_proof_certificate_attached(self, schema, transitivity):
        target = parse_td("R(x, y) & R(y, z) & R(z, w) -> R(x, w)", schema)
        report = infer([transitivity], target)
        assert report.chase_outcome is not None
        assert report.chase_outcome.chase_result.steps


class TestDisprovedByChase:
    def test_terminating_chase_counterexample(self, schema, transitivity):
        symmetry = parse_td("R(x, y) -> R(y, x)", schema)
        report = infer([transitivity], symmetry)
        assert report.disproved
        assert report.finite_counterexample is not None

    def test_counterexample_verified(self, schema, transitivity):
        symmetry = parse_td("R(x, y) -> R(y, x)", schema)
        report = infer([transitivity], symmetry, verify_certificates=True)
        assert transitivity.holds_in(report.finite_counterexample)


class TestDisprovedByFiniteSearch:
    def test_divergent_chase_rescued_by_model_search(self, schema, successor):
        predecessor = parse_td("R(x, y) -> R(p, x)", schema)
        report = infer(
            [successor], predecessor,
            semantics=Semantics.FINITE,
            budget=Budget.small(),
        )
        assert report.disproved
        assert report.finite_counterexample is not None
        assert successor.holds_in(report.finite_counterexample)
        assert predecessor.find_violation(report.finite_counterexample) is not None

    def test_finite_witness_refutes_unrestricted_too(self, schema, successor):
        predecessor = parse_td("R(x, y) -> R(p, x)", schema)
        report = infer(
            [successor], predecessor,
            semantics=Semantics.UNRESTRICTED,
            budget=Budget.small(),
        )
        assert report.disproved


class TestUnknown:
    def test_unknown_when_everything_fails(self, schema, successor):
        # successor |= successor-renamed is actually PROVED; build a case
        # where the implication holds only "in the limit": the chase
        # cannot reach it under a tiny budget and no finite counterexample
        # exists. successor |= 'every node reaches a 2-step descendant'
        # IS proved quickly, so use the reduction's gap-like shape instead:
        # successor |= predecessor restricted... Simplest honest UNKNOWN:
        # make the finite search fail by demanding something true.
        target = parse_td("R(x, y) & R(y, z) & R(z, w) -> R(w, v)", schema)
        report = infer(
            [successor],
            target,
            budget=Budget(max_steps=1, max_rows=3, max_seconds=5),
        )
        # Either the goal-directed chase proves it within one step (it
        # needs just one firing) or it is UNKNOWN; both are sound. Check
        # that the report is never DISPROVED (the implication is valid).
        assert report.status in (InferenceStatus.PROVED, InferenceStatus.UNKNOWN)

    def test_genuine_unknown_reported(self, positive_encoding):
        """The encoded positive instance under a starvation budget: the
        implication holds, but one chase step cannot establish it and no
        finite counterexample exists within the searcher's bounds.

        Exactly one step: with two, a lucky trigger order (hash
        randomization changes set iteration) occasionally completes the
        proof and flips this test.
        """
        report = infer(
            positive_encoding.dependencies,
            positive_encoding.d0,
            budget=Budget(max_steps=1, max_rows=10, max_seconds=5),
            finite_search_seed=0,
            finite_search_restarts=2,
            finite_search_seconds=2.0,
        )
        assert report.status is InferenceStatus.UNKNOWN


class TestDescribe:
    def test_mentions_semantics(self, schema, transitivity):
        target = parse_td("R(x, y) & R(y, z) & R(z, w) -> R(x, w)", schema)
        report = infer([transitivity], target, semantics=Semantics.FINITE)
        assert "finite" in report.describe()

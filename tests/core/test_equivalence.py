"""Unit tests for repro.core.equivalence."""

import pytest

from repro.chase.implication import InferenceStatus
from repro.core.equivalence import equivalent_sets, is_redundant, minimal_cover
from repro.dependencies.parser import parse_td
from repro.relational.schema import Schema


@pytest.fixture
def schema():
    return Schema(["A", "B"])


@pytest.fixture
def transitivity(schema):
    return parse_td("R(x, y) & R(y, z) -> R(x, z)", schema)


@pytest.fixture
def three_step(schema):
    return parse_td("R(x, y) & R(y, z) & R(z, w) -> R(x, w)", schema)


class TestEquivalentSets:
    def test_set_equivalent_to_itself_plus_consequence(
        self, transitivity, three_step
    ):
        report = equivalent_sets([transitivity], [transitivity, three_step])
        assert report.equivalent
        assert report.status is InferenceStatus.PROVED

    def test_inequivalent_sets(self, schema, transitivity):
        symmetry = parse_td("R(x, y) -> R(y, x)", schema)
        report = equivalent_sets([transitivity], [symmetry])
        assert report.status is InferenceStatus.DISPROVED
        assert symmetry in report.missing_left_to_right

    def test_direction_tracking(self, schema, transitivity):
        symmetry = parse_td("R(x, y) -> R(y, x)", schema)
        report = equivalent_sets([transitivity, symmetry], [transitivity])
        # left covers right, right does not cover left.
        assert report.missing_left_to_right == []
        assert symmetry in report.missing_right_to_left

    def test_empty_sets_equivalent(self):
        assert equivalent_sets([], []).equivalent


class TestRedundancy:
    def test_consequence_is_redundant(self, transitivity, three_step):
        status = is_redundant([transitivity, three_step], three_step)
        assert status is InferenceStatus.PROVED

    def test_generator_not_redundant(self, transitivity, three_step):
        status = is_redundant([transitivity, three_step], transitivity)
        assert status is InferenceStatus.DISPROVED


class TestMinimalCover:
    def test_removes_consequences(self, transitivity, three_step, schema):
        four_step = parse_td(
            "R(x, y) & R(y, z) & R(z, w) & R(w, u) -> R(x, u)", schema
        )
        cover = minimal_cover([transitivity, three_step, four_step])
        assert cover == [transitivity]

    def test_keeps_independent_dependencies(self, schema, transitivity):
        symmetry = parse_td("R(x, y) -> R(y, x)", schema)
        cover = minimal_cover([transitivity, symmetry])
        assert set(cover) == {transitivity, symmetry}

    def test_cover_still_equivalent(self, transitivity, three_step):
        original = [transitivity, three_step]
        cover = minimal_cover(original)
        assert equivalent_sets(cover, original).equivalent

    def test_singleton_kept(self, transitivity):
        assert minimal_cover([transitivity]) == [transitivity]

"""Tests for serialization (repro.io)."""

import json

import pytest

from repro.chase.engine import chase, replay
from repro.dependencies.parser import parse_dependency, parse_td
from repro.errors import ParseError
from repro.io.json_codec import (
    CodecError,
    dependency_from_json,
    dependency_to_json,
    instance_from_json,
    instance_to_json,
    presentation_from_json,
    presentation_to_json,
    semigroup_from_json,
    semigroup_to_json,
    trace_from_json,
    trace_to_json,
    value_from_json,
    value_to_json,
)
from repro.io.textfmt import (
    parse_dependency_file,
    parse_presentation_text,
    render_presentation_text,
)
from repro.relational.instance import Instance
from repro.relational.schema import Schema
from repro.relational.values import Const, LabeledNull
from repro.semigroups.construct import free_nilpotent
from repro.workloads.garment import garment_database, garment_eid
from repro.workloads.instances import positive_instance


def round_trip(payload):
    """Force a pass through actual JSON text."""
    return json.loads(json.dumps(payload))


class TestValueCodec:
    def test_plain_constant(self):
        value = Const("BVD")
        assert value_from_json(round_trip(value_to_json(value))) == value

    def test_tuple_named_constant(self):
        value = Const(("frozen", "x", 3))
        assert value_from_json(round_trip(value_to_json(value))) == value

    def test_nested_value_constant(self):
        value = Const((Const("a"), Const("b")))  # a direct-product value
        assert value_from_json(round_trip(value_to_json(value))) == value

    def test_labelled_null(self):
        value = LabeledNull(7)
        assert value_from_json(round_trip(value_to_json(value))) == value

    def test_bad_payload(self):
        with pytest.raises(CodecError):
            value_from_json({"wat": 1})


class TestInstanceCodec:
    def test_garment_database(self):
        db = garment_database()
        assert instance_from_json(round_trip(instance_to_json(db))) == db

    def test_instance_with_nulls(self):
        schema = Schema(["A", "B"])
        instance = Instance(schema, [(Const("a"), LabeledNull(0))])
        decoded = instance_from_json(round_trip(instance_to_json(instance)))
        assert decoded == instance

    def test_chased_instance_round_trips(self):
        fig1 = parse_td("R(a, b, c) & R(a, b', c') -> R(a*, b, c')",
                        garment_database().schema)
        result = chase(garment_database(), [fig1])
        decoded = instance_from_json(
            round_trip(instance_to_json(result.instance))
        )
        assert decoded == result.instance


class TestDependencyCodec:
    def test_td(self):
        td = parse_td("R(x, y) & R(y, z) -> R(x, z)")
        assert dependency_from_json(round_trip(dependency_to_json(td))) == td

    def test_eid(self):
        eid = garment_eid()
        decoded = dependency_from_json(round_trip(dependency_to_json(eid)))
        assert decoded == eid

    def test_name_preserved(self):
        eid = garment_eid()
        assert dependency_from_json(dependency_to_json(eid)).name == eid.name

    def test_td_with_many_conclusions_rejected(self):
        payload = dependency_to_json(garment_eid())
        payload["kind"] = "td"
        with pytest.raises(CodecError):
            dependency_from_json(payload)


class TestPresentationAndSemigroupCodec:
    def test_presentation(self):
        presentation = positive_instance()
        decoded = presentation_from_json(
            round_trip(presentation_to_json(presentation))
        )
        assert decoded.alphabet == presentation.alphabet
        assert decoded.equations == presentation.equations
        assert decoded.zero == presentation.zero

    def test_semigroup(self):
        semigroup = free_nilpotent(4)
        decoded = semigroup_from_json(round_trip(semigroup_to_json(semigroup)))
        assert decoded == semigroup

    def test_semigroup_associativity_rechecked(self):
        payload = {"table": [[0, 0], [1, 0]], "names": ["a", "b"]}
        from repro.errors import SemigroupError

        with pytest.raises(SemigroupError):
            semigroup_from_json(payload)


class TestTraceCodec:
    def test_trace_round_trips_and_replays(self):
        schema = Schema(["A", "B"])
        td = parse_td("R(x, y) & R(y, z) -> R(x, z)", schema)
        start = Instance(
            schema,
            [(Const("a"), Const("b")), (Const("b"), Const("c"))],
        )
        result = chase(start, [td])
        decoded = trace_from_json(round_trip(trace_to_json(result.steps)))
        replayed = replay(start, decoded)
        assert replayed.rows == result.instance.rows

    def test_registry_deduplicates(self):
        schema = Schema(["A", "B"])
        td = parse_td("R(x, y) & R(y, z) -> R(x, z)", schema)
        nodes = [Const(f"n{i}") for i in range(5)]
        start = Instance(schema, [(nodes[i], nodes[i + 1]) for i in range(4)])
        result = chase(start, [td])
        payload = trace_to_json(result.steps)
        assert len(payload["dependencies"]) == 1
        assert len(payload["steps"]) == result.step_count


class TestTextFormats:
    def test_dependency_file(self):
        text = """
        # two constraints
        R(x, y) & R(y, z) -> R(x, z)

        R(x, y) -> R(y, x)   # symmetry
        """
        deps = parse_dependency_file(text)
        assert len(deps) == 2
        assert deps[0].schema is deps[1].schema  # unified default schema

    def test_dependency_file_reports_line(self):
        with pytest.raises(ParseError, match="line 2"):
            parse_dependency_file("R(x,y) -> R(y,x)\nnot a dependency\n")

    def test_dependency_file_arity_mismatch(self):
        with pytest.raises(ParseError):
            parse_dependency_file("R(x,y) -> R(y,x)\nR(x,y,z) -> R(x,y,z)\n")

    def test_presentation_file(self):
        text = """
        letters: A0 0
        zero: 0
        a0: A0
        A0 A0 = A0
        A0 A0 = 0
        """
        presentation = parse_presentation_text(text)
        assert presentation.has_zero_equations()
        assert len(presentation.alphabet) == 2

    def test_presentation_without_zero_laws(self):
        text = "letters: A0 0\nzero-equations: no\nA0 A0 = 0\n"
        presentation = parse_presentation_text(text)
        assert not presentation.has_zero_equations()
        assert len(presentation.equations) == 1

    def test_presentation_requires_letters(self):
        with pytest.raises(ParseError):
            parse_presentation_text("A0 A0 = 0\n")

    def test_presentation_render_parse_round_trip(self):
        presentation = positive_instance()
        text = render_presentation_text(presentation)
        decoded = parse_presentation_text(text)
        assert decoded.alphabet == presentation.alphabet
        assert set(decoded.equations) == set(presentation.equations)

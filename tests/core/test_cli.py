"""Tests for the command-line interface."""

import pytest

from repro.cli import EXIT_DISPROVED, EXIT_PROVED, EXIT_UNKNOWN, EXIT_USAGE, main


@pytest.fixture
def deps_file(tmp_path):
    path = tmp_path / "deps.txt"
    path.write_text("R(x, y) & R(y, z) -> R(x, z)\n")
    return str(path)


@pytest.fixture
def positive_file(tmp_path):
    path = tmp_path / "positive.txt"
    path.write_text(
        "letters: A0 0\nA0 A0 = A0\nA0 A0 = 0\n"
    )
    return str(path)


@pytest.fixture
def negative_file(tmp_path):
    path = tmp_path / "negative.txt"
    path.write_text("letters: A0 0\n")
    return str(path)


class TestInfer:
    def test_proved(self, deps_file, capsys):
        code = main(
            ["infer", "--deps", deps_file, "R(x,y) & R(y,z) & R(z,w) -> R(x,w)"]
        )
        assert code == EXIT_PROVED
        assert "proved" in capsys.readouterr().out

    def test_disproved_with_counterexample(self, deps_file, capsys):
        code = main(["infer", "--deps", deps_file, "R(x,y) -> R(y,x)"])
        assert code == EXIT_DISPROVED
        output = capsys.readouterr().out
        assert "disproved" in output
        assert "counterexample database" in output

    def test_finite_semantics_flag(self, deps_file, capsys):
        code = main(
            [
                "infer",
                "--deps",
                deps_file,
                "--semantics",
                "finite",
                "R(x,y) & R(y,z) & R(z,w) -> R(x,w)",
            ]
        )
        assert code == EXIT_PROVED
        assert "finite" in capsys.readouterr().out

    def test_missing_file_is_usage_error(self, capsys):
        code = main(["infer", "--deps", "/nonexistent", "R(x,y) -> R(y,x)"])
        assert code == EXIT_USAGE
        assert "error" in capsys.readouterr().err

    def test_dump_proof_certificate(self, deps_file, tmp_path, capsys):
        import json

        from repro.io.json_codec import trace_from_json

        cert = tmp_path / "proof.json"
        code = main(
            [
                "infer",
                "--deps",
                deps_file,
                "--dump-certificate",
                str(cert),
                "R(x,y) & R(y,z) & R(z,w) -> R(x,w)",
            ]
        )
        assert code == EXIT_PROVED
        payload = json.loads(cert.read_text())
        assert payload["kind"] == "chase-proof"
        assert trace_from_json(payload["trace"])  # decodes to real steps

    def test_dump_counterexample_certificate(self, deps_file, tmp_path):
        import json

        from repro.io.json_codec import instance_from_json

        cert = tmp_path / "counter.json"
        code = main(
            [
                "infer",
                "--deps",
                deps_file,
                "--dump-certificate",
                str(cert),
                "R(x,y) -> R(y,x)",
            ]
        )
        assert code == EXIT_DISPROVED
        payload = json.loads(cert.read_text())
        assert payload["kind"] == "finite-counterexample"
        witness = instance_from_json(payload["database"])
        assert len(witness) >= 1


class TestClassify:
    def test_positive(self, positive_file, capsys):
        code = main(["classify", positive_file])
        assert code == EXIT_PROVED
        output = capsys.readouterr().out
        assert "a0_collapses" in output
        assert "derivation" in output

    def test_negative(self, negative_file, capsys):
        code = main(["classify", negative_file])
        assert code == EXIT_DISPROVED
        assert "finitely_refutable" in capsys.readouterr().out

    def test_gap_unknown(self, tmp_path, capsys):
        path = tmp_path / "gap.txt"
        path.write_text("letters: A0 0\nA0 A0 = A0\n")
        code = main(["classify", str(path), "--max-semigroup-size", "4"])
        assert code == EXIT_UNKNOWN
        assert "unknown" in capsys.readouterr().out


class TestEncode:
    def test_sizes(self, negative_file, capsys):
        code = main(["encode", negative_file])
        assert code == EXIT_PROVED
        output = capsys.readouterr().out
        assert "6 attributes" in output
        assert "12 dependencies" in output

    def test_full_listing(self, negative_file, capsys):
        main(["encode", negative_file, "--full"])
        output = capsys.readouterr().out
        assert "D0:" in output
        assert "D1[" in output


class TestDiagram:
    def test_ascii(self, capsys):
        code = main(["diagram", "R(a,b,c) & R(a,b',c') -> R(a*,b,c')"])
        assert code == EXIT_PROVED
        output = capsys.readouterr().out
        assert "nodes: 1, 2, *" in output

    def test_dot(self, capsys):
        main(["diagram", "--dot", "R(a,b,c) & R(a,b',c') -> R(a*,b,c')"])
        assert capsys.readouterr().out.startswith("graph")

    def test_untyped_rejected(self, capsys):
        code = main(["diagram", "R(x,y) & R(y,z) -> R(x,z)"])
        assert code == EXIT_USAGE


class TestDemo:
    def test_demo_runs(self, capsys):
        code = main(["demo"])
        assert code == EXIT_PROVED
        output = capsys.readouterr().out
        assert "direction (A) CONFIRMED" in output
        assert "direction (B) CONFIRMED" in output

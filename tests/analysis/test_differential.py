"""Differential suite: analyzer certificates versus actual chases.

For randomly generated weakly-acyclic dependency sets the analyzer must
(1) certify them, (2) let :func:`implies` run them to fixpoint with no
client budget under both kernels without ever returning UNKNOWN, (3)
never be caught out by the actual chase exceeding the certified bound,
and (4) preserve verdicts under goal-directed pruning.  Known
non-terminating sets must never be certified.
"""

from __future__ import annotations

import pytest

from repro.analysis import analyze, prune_for_target
from repro.chase.budget import Budget
from repro.chase.implication import FrozenStart, InferenceStatus, implies
from repro.dependencies.parser import parse_td
from repro.workloads.generators import (
    disguise,
    transitivity_family,
    weakly_acyclic_dependencies,
)

SEEDS = (0, 1, 2, 3, 4)
KERNELS = ("compiled", "legacy")


def _generated(seed: int, include_eids: bool):
    return weakly_acyclic_dependencies(
        count=2, arity=2 + (seed % 2), include_eids=include_eids, seed=seed
    )


class TestCertifiedSetsChaseToFixpoint:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("include_eids", [False, True])
    def test_generator_output_is_certified(self, seed, include_eids):
        dependencies = _generated(seed, include_eids)
        report = analyze(tuple(dependencies))
        assert report.certified, report.describe()

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_unbudgeted_implication_is_decisive(self, seed, kernel):
        dependencies = _generated(seed, include_eids=True)
        target = _generated(seed + 100, include_eids=False)[0]
        outcome = implies(dependencies, target, kernel=kernel)
        assert outcome.status is not InferenceStatus.UNKNOWN
        reference = implies(
            dependencies, target, budget=Budget.unlimited(),
            kernel=kernel, analysis="off",
        )
        assert outcome.status is reference.status
        provenance = outcome.analysis
        assert provenance is not None and provenance["applied"] is True

    @pytest.mark.parametrize("seed", SEEDS)
    def test_chase_steps_stay_under_certified_bound(self, seed):
        dependencies = _generated(seed, include_eids=True)
        target = _generated(seed + 100, include_eids=False)[0]
        certificate = analyze(tuple(dependencies)).certificate
        assert certificate is not None
        start = FrozenStart(target)
        bound = certificate.bounds(
            len(start.instance.active_domain()), len(start.instance)
        )
        assert bound is not None
        outcome = implies(dependencies, target)
        assert outcome.chase_result is not None
        assert outcome.chase_result.stats.steps < bound[0]
        assert outcome.chase_result.stats.rows_added < bound[1]

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_pruned_verdicts_match_full_verdicts(self, seed):
        base = _generated(seed, include_eids=False)
        # Pad with prunable noise: an alpha-renamed duplicate.
        noisy = list(base) + [disguise(base[0], seed=seed + 13)]
        target = _generated(seed + 100, include_eids=False)[0]
        pruned = implies(noisy, target)
        full = implies(
            noisy, target, budget=Budget.unlimited(), analysis="off"
        )
        assert pruned.status is full.status
        assert pruned.analysis is not None
        assert pruned.analysis["pruned"] >= 1


class TestStratifiedSets:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_stratified_set_decides_without_budget(self, kernel):
        symmetry = parse_td("R(x,y) -> R(y,x)")
        trivial = parse_td("R(x,y) & R(y,z) -> R(x,w)")
        target = parse_td("R(x,y) -> R(y,x)")
        outcome = implies([symmetry, trivial], target, kernel=kernel)
        assert outcome.status is InferenceStatus.PROVED
        disproved = implies(
            [symmetry, trivial], transitivity_family(3)[-1], kernel=kernel
        )
        assert disproved.status is InferenceStatus.DISPROVED


class TestNonTerminatingSetsNeverCertified:
    def test_successor_td(self):
        successor = parse_td("R(x,y) -> R(y,z)")
        assert not analyze((successor,)).certified

    def test_successor_stays_budgeted(self):
        successor = parse_td("R(x,y) -> R(y,z)")
        # The frozen transitivity start never produces R(a, c) with a as
        # the chain head, so this chase runs forever without the budget.
        target = parse_td("R(x,y) & R(y,z) -> R(x,z)")
        outcome = implies([successor], target, budget=Budget.small())
        assert outcome.status is InferenceStatus.UNKNOWN
        provenance = outcome.analysis
        assert provenance is not None
        assert provenance["certified"] is False
        assert provenance["applied"] is False

    def test_pruning_never_unlocks_certification_for_successor(self):
        successor = parse_td("R(x,y) -> R(y,z)")
        trivial = parse_td("R(x,y) & R(y,z) -> R(x,w)")
        program = prune_for_target((successor, trivial), None)
        assert program.certificate is None

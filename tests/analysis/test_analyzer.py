"""Unit tests for the static dependency analyzer.

Covers the dependency-free graph layer, fragment classification across
the hierarchy (full TGD / weakly acyclic / jointly acyclic / stratified
/ none), derived termination bounds, never-fires detection, and the
goal-directed pruning pass with its three drop reasons.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    AnalysisReport,
    Fragment,
    MultiDiGraph,
    analyze,
    build_position_graph,
    existential_depth,
    find_special_cycle,
    never_fires,
    position_ranks,
    prune_for_target,
    stratify,
)
from repro.chase.budget import Budget
from repro.chase.implication import InferenceStatus, implies
from repro.dependencies.parser import parse_td
from repro.reduction.encode import encode
from repro.workloads.generators import disguise, transitivity_family
from repro.workloads.instances import negative_instance, positive_instance


# ---------------------------------------------------------------------------
# Graph layer


class TestMultiDiGraph:
    def test_parallel_edges_are_kept(self):
        graph = MultiDiGraph()
        graph.add_edge(0, 1, special=False)
        graph.add_edge(0, 1, special=True)
        assert graph.number_of_edges() == 2
        data = graph.get_edge_data(0, 1)
        assert data is not None
        assert sorted(d["special"] for d in data.values()) == [False, True]

    def test_scc_groups_cycles(self):
        graph = MultiDiGraph()
        graph.add_edge(0, 1)
        graph.add_edge(1, 0)
        graph.add_edge(1, 2)
        components = list(graph.strongly_connected_components())
        assert {frozenset(c) for c in components} == {
            frozenset({0, 1}),
            frozenset({2}),
        }

    def test_scc_order_is_reverse_topological(self):
        graph = MultiDiGraph()
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        components = list(graph.strongly_connected_components())
        # Sinks first: 2 before 1 before 0.
        assert components == [{2}, {1}, {0}]

    def test_shortest_path(self):
        graph = MultiDiGraph()
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        graph.add_edge(0, 2)
        assert graph.shortest_path(0, 2) == [0, 2]
        with pytest.raises(ValueError):
            graph.shortest_path(2, 0)


# ---------------------------------------------------------------------------
# Fragment classification


class TestFragments:
    def test_full_tgd_set_is_certified(self):
        transitivity = parse_td("R(x,y) & R(y,z) -> R(x,z)")
        report = analyze((transitivity,))
        assert report.fragment is Fragment.FULL
        assert report.certified
        assert report.certificate is not None
        assert report.certificate.rank == 0

    def test_weakly_acyclic_set_has_positive_rank(self):
        dep = parse_td("R(x,y) -> R(x,z)")
        report = analyze((dep,))
        assert report.fragment is Fragment.WEAKLY_ACYCLIC
        assert report.weakly_acyclic
        assert report.certificate is not None
        assert report.certificate.rank >= 1

    def test_successor_td_is_not_certified(self):
        successor = parse_td("R(x,y) -> R(y,z)")
        report = analyze((successor,))
        assert report.fragment is Fragment.NONE
        assert not report.certified
        assert report.certificate is None
        assert report.special_cycle is not None

    def test_weakly_acyclic_sets_are_jointly_acyclic(self):
        # JA strictly contains WA, so every WA verdict must come with a
        # finite existential depth.
        for text in ("R(x,y) -> R(x,z)", "R(x,y) & R(y,z) -> R(x,w)"):
            dep = parse_td(text)
            report = analyze((dep,))
            assert report.weakly_acyclic
            assert report.jointly_acyclic

    def test_stratified_set_is_certified(self):
        # The symmetric rule never fires on its own conclusions being
        # embedded; the existential rule alone is weakly acyclic, but the
        # pair has a special cycle through R.  Stratification on the
        # firing graph certifies the productive remainder.
        symmetry = parse_td("R(x,y) -> R(y,x)")
        trivial = parse_td("R(x,y) & R(y,z) -> R(x,w)")
        report = analyze((symmetry, trivial))
        assert report.fragment is Fragment.STRATIFIED
        assert report.certified

    def test_report_describe_renders(self):
        report = analyze((parse_td("R(x,y) -> R(x,z)"),))
        text = report.describe()
        assert "weakly-acyclic" in text
        assert isinstance(report, AnalysisReport)


class TestExistentialDepth:
    def test_successor_td_has_no_depth(self):
        assert existential_depth((parse_td("R(x,y) -> R(y,z)"),)) is None

    def test_weakly_acyclic_dep_has_depth(self):
        depth = existential_depth((parse_td("R(x,y) -> R(x,z)"),))
        assert depth is not None
        assert depth >= 1

    def test_full_set_has_zero_depth(self):
        assert existential_depth((parse_td("R(x,y) & R(y,z) -> R(x,z)"),)) == 0


# ---------------------------------------------------------------------------
# Position graph plumbing (wrappers around the old termination module)


class TestPositionGraph:
    def test_special_cycle_witness_for_successor(self):
        successor = parse_td("R(x,y) -> R(y,z)")
        cycle = find_special_cycle((successor,))
        assert cycle is not None
        assert any(edge.special for edge in cycle)

    def test_ranks_bounded_for_acyclic_graph(self):
        graph = build_position_graph((parse_td("R(x,y) -> R(x,z)"),))
        ranks = position_ranks(graph)
        assert ranks is not None
        assert max(ranks.values()) >= 1

    def test_full_set_ranks_are_zero(self):
        # No special edges at all: every position sits at rank 0.
        graph = build_position_graph((parse_td("R(x,y) & R(y,z) -> R(x,z)"),))
        ranks = position_ranks(graph)
        assert set(ranks.values()) == {0}


# ---------------------------------------------------------------------------
# GL encodings: the paper's reduction is provably never weakly acyclic,
# so the analyzer must refuse to certify it — asserted statically,
# without running a chase.


class TestGLEncodings:
    @pytest.mark.parametrize(
        "presentation", [positive_instance(), negative_instance()]
    )
    def test_encodings_never_certified(self, presentation):
        encoded = encode(presentation)
        report = analyze(tuple(encoded.dependencies))
        assert not report.certified
        assert report.certificate is None


# ---------------------------------------------------------------------------
# Never-fires and stratification


class TestFiring:
    def test_reflexive_projection_never_fires(self):
        dep = parse_td("R(x,y) -> R(x,x)")
        assert not never_fires(dep)
        trivial = parse_td("R(x,y) & R(y,z) -> R(x,w)")
        assert never_fires(trivial)

    def test_stratify_orders_never_firing_first(self):
        symmetry = parse_td("R(x,y) -> R(y,x)")
        trivial = parse_td("R(x,y) & R(y,z) -> R(x,w)")
        strata = stratify((symmetry, trivial))
        assert len(strata) == 2
        # The never-firing dependency forms its own leading stratum.
        assert strata[0] == (1,)
        assert strata[1] == (0,)


# ---------------------------------------------------------------------------
# Termination certificates and derived budgets


class TestCertificateBounds:
    def test_full_set_bound_counts_rows(self):
        report = analyze((parse_td("R(x,y) & R(y,z) -> R(x,z)"),))
        assert report.certificate is not None
        bound = report.certificate.bounds(4, 3)
        assert bound is not None
        steps, rows = bound
        # Full sets add no values: at most domain**arity rows.
        assert steps == rows
        assert rows == 4**2 + 1

    def test_derived_budget_is_finite(self):
        report = analyze((parse_td("R(x,y) -> R(x,z)"),))
        assert report.certificate is not None
        budget = report.certificate.derived_budget(3, 2)
        assert isinstance(budget, Budget)
        assert budget.max_steps is not None
        assert budget.max_seconds is None

    def test_huge_rank_overflows_to_none(self):
        # Bound computation must refuse (not mis-certify) when the
        # closed-form blows past the bit guard.
        report = analyze((parse_td("R(x,y) -> R(x,z)"),))
        certificate = report.certificate
        assert certificate is not None
        from dataclasses import replace

        inflated = replace(certificate, rank=10_000, max_universals=64)
        assert inflated.bounds(10, 10) is None


# ---------------------------------------------------------------------------
# Goal-directed pruning


class TestPruning:
    def test_never_firing_dependency_is_dropped(self):
        transitivity = parse_td("R(x,y) & R(y,z) -> R(x,z)")
        trivial = parse_td("R(x,y) & R(y,z) -> R(x,w)")
        program = prune_for_target((transitivity, trivial), None)
        assert len(program.kept) == 1
        assert program.kept[0] == transitivity
        assert [d.reason for d in program.dropped] == ["never-fires"]

    def test_alpha_renamed_duplicate_is_dropped(self):
        transitivity = parse_td("R(x,y) & R(y,z) -> R(x,z)")
        duplicate = disguise(transitivity, seed=7)
        program = prune_for_target((transitivity, duplicate), None)
        assert len(program.kept) == 1
        assert any(d.reason == "duplicate" for d in program.dropped)

    def test_entailed_shortcut_is_dropped(self):
        transitivity = parse_td("R(x,y) & R(y,z) -> R(x,z)")
        shortcut = parse_td("R(x,y) & R(y,z) & R(z,u) -> R(x,u)")
        program = prune_for_target((transitivity, shortcut), None)
        assert len(program.kept) == 1
        assert any(d.reason == "entailed" for d in program.dropped)

    def test_pruned_program_preserves_verdicts(self):
        transitivity = parse_td("R(x,y) & R(y,z) -> R(x,z)")
        trivial = parse_td("R(x,y) & R(y,z) -> R(x,w)")
        target = transitivity_family(4)[-1]
        full = implies(
            [transitivity, trivial], target, budget=Budget.unlimited(),
            analysis="off",
        )
        pruned = implies([transitivity, trivial], target)
        assert full.status is InferenceStatus.PROVED
        assert pruned.status is full.status
        assert pruned.analysis is not None
        assert pruned.analysis["pruned"] == 1

    def test_provenance_shape(self):
        transitivity = parse_td("R(x,y) & R(y,z) -> R(x,z)")
        outcome = implies([transitivity], transitivity_family(3)[-1])
        provenance = outcome.analysis
        assert provenance is not None
        for key in (
            "fragment",
            "certified",
            "applied",
            "pruned",
            "kept",
            "strata",
            "dropped",
        ):
            assert key in provenance
        assert provenance["certified"] is True
        assert provenance["applied"] is True
        assert provenance["derived_max_steps"] is not None

    def test_analysis_off_leaves_no_provenance(self):
        transitivity = parse_td("R(x,y) & R(y,z) -> R(x,z)")
        outcome = implies(
            [transitivity], transitivity_family(3)[-1],
            budget=Budget.unlimited(), analysis="off",
        )
        assert outcome.analysis is None

"""The public API surface: everything advertised is importable and real."""

import importlib

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.relational",
    "repro.dependencies",
    "repro.chase",
    "repro.semigroups",
    "repro.reduction",
    "repro.core",
    "repro.workloads",
    "repro.io",
    "repro.service",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_exist(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", [])
    assert exported, f"{package_name} must declare __all__"
    for name in exported:
        assert hasattr(package, name), f"{package_name}.{name} missing"


def test_version():
    assert repro.__version__ == "1.1.0"


def test_quickstart_docstring_is_accurate():
    """The package docstring's quickstart actually runs."""
    from repro import infer, parse_td

    transitivity = parse_td("R(x,y) & R(y,z) -> R(x,z)")
    goal = parse_td("R(x,y) & R(y,z) & R(z,w) -> R(x,w)")
    report = infer([transitivity], goal)
    assert report.proved


def test_every_module_has_docstring():
    import pathlib

    src = pathlib.Path(repro.__file__).parent
    for path in sorted(src.rglob("*.py")):
        parts = list(path.relative_to(src).parts)
        parts[-1] = parts[-1][: -len(".py")]
        if parts[-1] == "__init__":
            parts.pop()
        module_name = ".".join(["repro"] + parts)
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"

"""Unit tests for repro.chase.budget."""

import time

from repro.chase.budget import Budget, ChaseStats


class TestBudget:
    def test_defaults_are_finite(self):
        budget = Budget()
        assert budget.max_steps is not None
        assert budget.max_rows is not None
        assert budget.max_seconds is not None

    def test_unlimited(self):
        budget = Budget.unlimited()
        assert budget.max_steps is None
        assert budget.max_rows is None
        assert budget.max_seconds is None

    def test_small_is_tighter_than_default(self):
        assert Budget.small().max_steps < Budget().max_steps

    def test_start_returns_fresh_stats(self):
        stats = Budget().start()
        assert stats.steps == 0
        assert stats.rows_added == 0


class TestChaseStats:
    def test_step_counting(self):
        stats = Budget().start()
        stats.note_step()
        stats.note_step()
        assert stats.steps == 2

    def test_row_counting(self):
        stats = Budget().start()
        stats.note_row()
        assert stats.rows_added == 1

    def test_exhausted_by_steps(self):
        stats = Budget(max_steps=2, max_rows=None, max_seconds=None).start()
        assert not stats.exhausted()
        stats.note_step()
        stats.note_step()
        assert stats.exhausted()

    def test_exhausted_by_rows_added(self):
        stats = Budget(max_steps=None, max_rows=3, max_seconds=None).start()
        for __ in range(3):
            stats.note_row()
        assert stats.exhausted()

    def test_exhausted_by_current_rows_argument(self):
        stats = Budget(max_steps=None, max_rows=10, max_seconds=None).start()
        assert not stats.exhausted(current_rows=9)
        assert stats.exhausted(current_rows=10)

    def test_exhausted_by_time(self):
        stats = Budget(max_steps=None, max_rows=None, max_seconds=0.01).start()
        time.sleep(0.02)
        assert stats.exhausted()

    def test_unlimited_never_exhausts(self):
        stats = Budget.unlimited().start()
        for __ in range(1000):
            stats.note_step()
            stats.note_row()
        assert not stats.exhausted(current_rows=10**9)

    def test_describe_mentions_counters(self):
        stats = Budget().start()
        stats.note_step()
        assert "steps=1" in stats.describe()

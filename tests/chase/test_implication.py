"""Unit tests for repro.chase.implication."""

import pytest

from repro.chase.budget import Budget
from repro.chase.implication import (
    InferenceStatus,
    conclusion_satisfied,
    implies,
    implies_all,
)
from repro.chase.modelcheck import satisfies_all
from repro.dependencies.parser import parse_td
from repro.relational.schema import Schema


@pytest.fixture
def schema():
    return Schema(["A", "B"])


class TestProved:
    def test_transitivity_implies_longer_paths(self, schema):
        transitivity = parse_td("R(x, y) & R(y, z) -> R(x, z)", schema)
        target = parse_td("R(x, y) & R(y, z) & R(z, w) -> R(x, w)", schema)
        outcome = implies([transitivity], target)
        assert outcome.status is InferenceStatus.PROVED
        assert outcome.proved

    def test_dependency_implies_itself(self, schema):
        td = parse_td("R(x, y) -> R(y, z)", schema)
        renamed = parse_td("R(u, v) -> R(v, w)", schema)
        assert implies([td], renamed).status is InferenceStatus.PROVED

    def test_trivial_target_needs_no_dependencies(self, schema):
        trivial = parse_td("R(x, y) -> R(x, y)", schema)
        outcome = implies([], trivial)
        assert outcome.status is InferenceStatus.PROVED
        assert outcome.chase_result.step_count == 0

    def test_proof_trace_replayable(self, schema):
        from repro.chase.engine import replay

        transitivity = parse_td("R(x, y) & R(y, z) -> R(x, z)", schema)
        target = parse_td("R(x, y) & R(y, z) & R(z, w) -> R(x, w)", schema)
        outcome = implies([transitivity], target)
        start, frozen = target.freeze()
        final = replay(start, outcome.chase_result.steps)
        assert conclusion_satisfied(final, target, frozen)

    def test_embedded_target_with_existential_conclusion(self, schema):
        successor = parse_td("R(x, y) -> R(y, z)", schema)
        weaker = parse_td("R(x, y) & R(y, w) -> R(w, v)", schema)
        assert implies([successor], weaker).status is InferenceStatus.PROVED


class TestDisproved:
    def test_counterexample_produced(self, schema):
        transitivity = parse_td("R(x, y) & R(y, z) -> R(x, z)", schema)
        symmetry = parse_td("R(x, y) -> R(y, x)", schema)
        outcome = implies([transitivity], symmetry)
        assert outcome.status is InferenceStatus.DISPROVED
        assert outcome.disproved
        counterexample = outcome.counterexample
        assert counterexample is not None
        assert satisfies_all(counterexample, [transitivity])
        assert symmetry.find_violation(counterexample) is not None

    def test_empty_dependency_set_disproves_nontrivial(self, schema):
        target = parse_td("R(x, y) -> R(y, x)", schema)
        assert implies([], target).status is InferenceStatus.DISPROVED


class TestUnknown:
    def test_divergent_chase_reports_unknown(self, schema):
        successor = parse_td("R(x, y) -> R(y, z)", schema)
        predecessor = parse_td("R(x, y) -> R(z, x)", schema)
        outcome = implies([successor], predecessor, budget=Budget.small())
        assert outcome.status is InferenceStatus.UNKNOWN
        assert not outcome.proved and not outcome.disproved


class TestBatch:
    def test_implies_all(self, schema):
        transitivity = parse_td("R(x, y) & R(y, z) -> R(x, z)", schema)
        targets = [
            parse_td("R(x, y) & R(y, z) & R(z, w) -> R(x, w)", schema),
            parse_td("R(x, y) -> R(y, x)", schema),
        ]
        outcomes = implies_all([transitivity], targets)
        assert [o.status for o in outcomes] == [
            InferenceStatus.PROVED,
            InferenceStatus.DISPROVED,
        ]


class TestDescribe:
    def test_describe_mentions_status(self, schema):
        td = parse_td("R(x, y) -> R(x, y)", schema)
        assert "proved" in implies([], td).describe()

"""Randomized differential tests: compiled model checker vs legacy search.

The compiled checker (:mod:`repro.chase.checkplan`) must be semantically
indistinguishable from the generic homomorphism search it replaces:
identical ``holds_in`` verdicts on every instance, and violation
witnesses that are *equivalent* — a witness is a complete assignment of
the universal variables mapping every antecedent into the instance with
no conclusion extension. The two checkers may surface *different*
witnesses for the same violated dependency (enumeration order differs,
exactly as it does between hash-seed runs of the legacy search), so the
comparisons here are semantic: verdict equality, witness validity, and
the ``all_violations == [] iff satisfies_all`` contract.
"""

import pytest

from repro.chase.budget import Budget
from repro.chase.checkplan import ModelChecker, find_violation_legacy
from repro.chase.engine import chase
from repro.chase.finite_models import search_exhaustive, search_random
from repro.chase.implication import implies
from repro.chase.modelcheck import all_violations, satisfies_all
from repro.dependencies.parser import parse_td
from repro.dependencies.template import is_variable
from repro.relational.homomorphism import extend_homomorphism, is_homomorphism
from repro.relational.schema import Schema
from repro.workloads.generators import (
    inference_workload,
    random_eid,
    random_instance,
    random_td,
    weakly_acyclic_dependencies,
)

#: Every test runs under both join backends (the native leg skips
#: visibly when the extension is not built): the same seeds that hold
#: compiled ≡ legacy also hold native ≡ python.
pytestmark = pytest.mark.usefixtures("join_backend")

CHECKERS = ("legacy", "compiled")


def _assert_witness_valid(dependency, instance, witness):
    """A genuine violation: antecedents embed, conclusions cannot extend."""
    assert set(witness) == dependency.universal_variables()
    assert is_homomorphism(
        witness, dependency.antecedents, instance, flexible=is_variable
    )
    assert (
        extend_homomorphism(
            witness, list(dependency.conclusions), instance, flexible=is_variable
        )
        is None
    )


def _assert_checkers_agree(dependency, instance):
    legacy = dependency.find_violation(instance, checker="legacy")
    compiled = dependency.find_violation(instance, checker="compiled")
    assert (legacy is None) == (compiled is None), dependency
    if compiled is not None:
        _assert_witness_valid(dependency, instance, compiled)
        _assert_witness_valid(dependency, instance, legacy)
    return compiled


class TestVerdictAgreement:
    """holds_in verdicts must match on random TDs, EIDs and instances."""

    @pytest.mark.parametrize("seed", range(12))
    def test_random_dependencies_on_random_instances(self, seed):
        dependencies = [
            random_td(seed=seed, existential_probability=0.4),
            random_td(seed=seed + 500, existential_probability=0.0),
            random_eid(seed=seed),
            random_eid(seed=seed + 250, conclusions=3),
        ]
        instance = random_instance(seed=seed, rows=4 + seed % 8)
        for dependency in dependencies:
            _assert_checkers_agree(dependency, instance)

    @pytest.mark.parametrize("seed", range(8))
    def test_chased_instances_with_nulls(self, seed):
        """Fixpoints contain labelled nulls; verdicts must still agree."""
        dependencies = weakly_acyclic_dependencies(
            seed=seed, include_eids=(seed % 2 == 0)
        )
        start = random_instance(seed=seed, rows=6)
        final = chase(start, dependencies).instance
        # The fixpoint satisfies its own dependencies under both checkers.
        for checker in CHECKERS:
            assert satisfies_all(final, dependencies, checker=checker)
        # Probe unrelated dependencies against the null-bearing instance.
        for offset in range(3):
            probe = random_td(
                seed=seed * 97 + offset, existential_probability=0.5
            )
            _assert_checkers_agree(probe, final)

    def test_disproved_counterexamples_verify_under_both(self):
        dependencies, targets = inference_workload(queries=25, seed=11)
        budget = Budget(max_steps=2_000)
        disproved = 0
        for target in targets:
            outcome = implies(dependencies, target, budget=budget)
            if not outcome.disproved:
                continue
            disproved += 1
            counterexample = outcome.counterexample
            for checker in CHECKERS:
                assert satisfies_all(
                    counterexample, dependencies, checker=checker
                )
                witness = target.find_violation(counterexample, checker=checker)
                assert witness is not None
                _assert_witness_valid(target, counterexample, witness)
        assert disproved > 0  # the mix must actually exercise DISPROVED


class TestAllViolationsContract:
    """``all_violations == []`` exactly when ``satisfies_all``."""

    @pytest.mark.parametrize("seed", range(10))
    def test_iff_property_and_witnesses(self, seed):
        dependencies = [
            random_td(seed=seed * 3, existential_probability=0.3),
            random_td(seed=seed * 3 + 1, existential_probability=0.0),
            random_eid(seed=seed * 3 + 2),
        ]
        instance = random_instance(seed=seed + 100, rows=5 + seed % 6)
        for checker in CHECKERS:
            violations = all_violations(instance, dependencies, checker=checker)
            assert (violations == []) == satisfies_all(
                instance, dependencies, checker=checker
            )
            for dependency, witness in violations:
                _assert_witness_valid(dependency, instance, witness)
        # The *set* of violated dependencies agrees between checkers.
        violated = {
            checker: [
                id(dependency)
                for dependency, __ in all_violations(
                    instance, dependencies, checker=checker
                )
            ]
            for checker in CHECKERS
        }
        assert violated["legacy"] == violated["compiled"]


class TestModelCheckerState:
    """The shared-KernelState wrapper must track instance mutation."""

    def test_incremental_adds_stay_in_sync(self):
        from repro.relational.instance import Instance
        from repro.relational.values import Const

        schema = Schema(["FROM", "TO"])
        transitivity = parse_td("R(x, y) & R(y, z) -> R(x, z)", schema)
        # A 4-cycle: closing it transitively takes a dozen repairs.
        nodes = [Const(index) for index in range(4)]
        instance = Instance(
            schema, [(nodes[i], nodes[(i + 1) % 4]) for i in range(4)]
        )
        model = ModelChecker(instance, checker="compiled")
        repairs = 0
        while repairs < 50:
            witness = model.find_violation(transitivity)
            fresh_reference = transitivity.find_violation(
                instance, checker="legacy"
            )
            assert (witness is None) == (fresh_reference is None)
            if witness is None:
                break
            image = tuple(
                witness[variable] for variable in transitivity.conclusion
            )
            assert model.add(image)
            assert image in instance  # add went through to the instance
            repairs += 1
        assert model.holds_in(transitivity)
        assert transitivity.holds_in(instance, checker="legacy")

    def test_out_of_band_adds_detected_by_rebuild(self):
        schema = Schema(["FROM", "TO"])
        symmetry = parse_td("R(x, y) -> R(y, x)", schema)
        instance = random_instance(seed=9, rows=4, arity=2, schema=schema)
        model = ModelChecker(instance, checker="compiled")
        witness = model.find_violation(symmetry)
        assert witness is not None
        # Mutate behind the checker's back: repair every violation via the
        # raw instance, then re-query — the row-count check must rebuild.
        while True:
            raw = symmetry.find_violation(instance, checker="legacy")
            if raw is None:
                break
            instance.add(tuple(raw[variable] for variable in symmetry.conclusion))
        assert model.holds_in(symmetry)

    def test_add_checks_arity_on_every_path(self):
        """Regression: the synced compiled path used to inherit
        KernelState.add's arity-check bypass, so a malformed row raised
        on the legacy path but silently corrupted on the compiled one."""
        from repro.errors import ArityError
        from repro.relational.instance import Instance
        from repro.relational.values import Const

        schema = Schema(["FROM", "TO"])
        dependency = parse_td("R(x, y) -> R(y, x)", schema)
        bad_row = (Const("a"), Const("b"), Const("c"))
        for checker in CHECKERS:
            instance = Instance(schema, [(Const("a"), Const("b"))])
            model = ModelChecker(instance, checker=checker)
            model.holds_in(dependency)  # compiled: builds the synced state
            with pytest.raises(ArityError):
                model.add(bad_row)
            assert len(instance) == 1  # nothing leaked in

    def test_legacy_mode_never_builds_kernel_state(self):
        instance = random_instance(seed=1, rows=5)
        dependency = random_td(seed=1)
        model = ModelChecker(instance, checker="legacy")
        model.find_violation(dependency)
        assert instance._view is None  # no interned view was ever built
        # And the result matches the module-level legacy entry point.
        assert model.find_violation(dependency) == find_violation_legacy(
            dependency, instance
        )


class TestFiniteSearchDifferential:
    """The finite-model searches must behave identically per checker."""

    def test_exhaustive_search_identical_witness(self):
        schema = Schema(["FROM", "TO"])
        successor = parse_td("R(x, y) -> R(y, s)", schema)
        predecessor = parse_td("R(x, y) -> R(p, x)", schema)
        results = {
            checker: search_exhaustive(
                [successor], predecessor, domain_size=3, checker=checker
            )
            for checker in CHECKERS
        }
        # Deterministic smallest-first enumeration + verdict agreement
        # means the two checkers return the *same* minimum witness.
        assert results["legacy"] is not None
        assert results["compiled"] is not None
        assert results["legacy"].rows == results["compiled"].rows

    @pytest.mark.parametrize("checker", CHECKERS)
    def test_random_search_witnesses_are_genuine(self, checker):
        """Trajectories may differ (witness order feeds the rng), so we
        check validity of whatever each checker's search returns."""
        schema = Schema(["FROM", "TO"])
        successor = parse_td("R(x, y) -> R(y, s)", schema)
        predecessor = parse_td("R(x, y) -> R(p, x)", schema)
        witness = search_random(
            [successor], predecessor, seed=0, checker=checker
        )
        assert witness is not None
        for verifier in CHECKERS:
            assert satisfies_all(witness, [successor], checker=verifier)
            assert (
                predecessor.find_violation(witness, checker=verifier)
                is not None
            )

"""Tests for the semi-naive chase variant and delta trigger enumeration."""

import pytest

from repro.chase.budget import Budget
from repro.chase.engine import ChaseVariant, chase
from repro.chase.result import ChaseStatus
from repro.chase.trigger import iter_triggers, iter_triggers_touching
from repro.dependencies.parser import parse_td
from repro.relational.core import homomorphically_equivalent
from repro.relational.instance import Instance
from repro.relational.schema import Schema
from repro.relational.values import Const
from repro.workloads.generators import random_full_td, random_instance, transitivity_family


@pytest.fixture
def schema():
    return Schema(["A", "B"])


@pytest.fixture
def path(schema):
    nodes = [Const(f"n{i}") for i in range(5)]
    return Instance(schema, [(nodes[i], nodes[i + 1]) for i in range(4)])


@pytest.fixture
def transitivity(schema):
    return parse_td("R(x, y) & R(y, z) -> R(x, z)", schema)


class TestDeltaTriggers:
    def test_full_delta_equals_naive_enumeration(self, path, transitivity):
        naive = {t.bindings for t in iter_triggers(path, transitivity)}
        seeded = {
            t.bindings
            for t in iter_triggers_touching(path, transitivity, set(path.rows))
        }
        assert naive == seeded

    def test_small_delta_restricts(self, path, transitivity):
        one_row = {next(iter(path.rows))}
        seeded = list(iter_triggers_touching(path, transitivity, one_row))
        naive = list(iter_triggers(path, transitivity))
        assert len(seeded) <= len(naive)
        # Every seeded trigger uses the delta row in some atom.
        for trigger in seeded:
            assignment = trigger.assignment()
            images = {
                tuple(assignment[v] for v in atom)
                for atom in transitivity.antecedents
            }
            assert images & one_row

    def test_empty_delta_yields_nothing(self, path, transitivity):
        assert list(iter_triggers_touching(path, transitivity, set())) == []

    def test_no_duplicate_triggers(self, schema, transitivity):
        # A loop row matches both atoms of transitivity: dedup required.
        a = Const("a")
        loop = Instance(schema, [(a, a)])
        triggers = list(iter_triggers_touching(loop, transitivity, {(a, a)}))
        assert len(triggers) == 1


class TestSemiNaiveChase:
    def test_same_fixpoint_as_standard_full_tds(self, path, transitivity):
        standard = chase(path, [transitivity])
        semi = chase(path, [transitivity], variant=ChaseVariant.SEMI_NAIVE)
        assert semi.status is ChaseStatus.TERMINATED
        assert semi.instance.rows == standard.instance.rows

    def test_satisfies_dependencies_at_fixpoint(self, path, transitivity):
        result = chase(path, [transitivity], variant=ChaseVariant.SEMI_NAIVE)
        assert transitivity.holds_in(result.instance)

    def test_goal_respected(self, path, transitivity):
        target = (Const("n0"), Const("n2"))
        result = chase(
            path,
            [transitivity],
            variant=ChaseVariant.SEMI_NAIVE,
            goal=lambda inst: target in inst,
        )
        assert result.status is ChaseStatus.GOAL_REACHED

    def test_budget_respected(self, schema):
        successor = parse_td("R(x, y) -> R(y, z)", schema)
        start = Instance(schema, [(Const("a"), Const("b"))])
        result = chase(
            start,
            [successor],
            variant=ChaseVariant.SEMI_NAIVE,
            budget=Budget(max_steps=5),
        )
        assert result.status is ChaseStatus.BUDGET_EXHAUSTED
        assert result.step_count == 5

    def test_embedded_equivalent_to_standard(self, schema):
        deps = [
            parse_td("R(x, y) -> R(y, x)", schema),
            parse_td("R(x, y) & R(y, z) -> R(x, z)", schema),
        ]
        start = Instance(schema, [(Const("a"), Const("b"))])
        standard = chase(start, deps)
        semi = chase(start, deps, variant=ChaseVariant.SEMI_NAIVE)
        assert standard.status is ChaseStatus.TERMINATED
        assert semi.status is ChaseStatus.TERMINATED
        assert semi.instance.rows == standard.instance.rows

    @pytest.mark.parametrize("seed", range(6))
    def test_random_full_tds_agree_with_standard(self, seed):
        td = random_full_td(seed=seed)
        instance = random_instance(seed=seed)
        standard = chase(instance, [td])
        semi = chase(instance, [td], variant=ChaseVariant.SEMI_NAIVE)
        assert standard.status is ChaseStatus.TERMINATED
        assert semi.status is ChaseStatus.TERMINATED
        # Full TDs invent no nulls: the fixpoints are literally equal.
        assert semi.instance.rows == standard.instance.rows

    def test_transitivity_family_equivalence(self):
        deps, target = transitivity_family(6)
        start, __ = target.freeze()
        standard = chase(start, deps)
        semi = chase(start, deps, variant=ChaseVariant.SEMI_NAIVE)
        assert semi.instance.rows == standard.instance.rows

    def test_embedded_results_homomorphically_equivalent(self, schema):
        """With nulls the row sets differ by labels only."""
        dep = parse_td("R(x, y) -> R(y, w)", schema)
        square = Instance(
            schema, [(Const("a"), Const("b")), (Const("b"), Const("a"))]
        )
        standard = chase(square, [dep])
        semi = chase(square, [dep], variant=ChaseVariant.SEMI_NAIVE)
        assert standard.status is ChaseStatus.TERMINATED
        assert semi.status is ChaseStatus.TERMINATED
        assert homomorphically_equivalent(standard.instance, semi.instance)

"""Unit tests for repro.chase.finite_models."""

import pytest

from repro.chase.finite_models import (
    search_exhaustive,
    search_finite_counterexample,
    search_random,
)
from repro.chase.modelcheck import satisfies_all
from repro.dependencies.parser import parse_td
from repro.relational.schema import Schema


@pytest.fixture
def schema():
    return Schema(["A", "B"])


@pytest.fixture
def successor(schema):
    return parse_td("R(x, y) -> R(y, s)", schema)


@pytest.fixture
def predecessor(schema):
    return parse_td("R(x, y) -> R(p, x)", schema)


def assert_genuine_counterexample(witness, dependencies, target):
    assert witness is not None
    assert satisfies_all(witness, dependencies)
    assert target.find_violation(witness) is not None


class TestRandomSearch:
    def test_folds_diverging_chase_into_cycle(self, successor, predecessor):
        witness = search_random([successor], predecessor, seed=0)
        assert_genuine_counterexample(witness, [successor], predecessor)

    def test_deterministic_in_seed(self, successor, predecessor):
        first = search_random([successor], predecessor, seed=3)
        second = search_random([successor], predecessor, seed=3)
        assert first is not None and second is not None
        assert first.rows == second.rows

    def test_no_counterexample_for_valid_implication(self, schema, successor):
        weaker = parse_td("R(x, y) & R(y, z) -> R(z, w)", schema)
        # successor |= weaker, so no counterexample can exist.
        assert search_random([successor], weaker, seed=0, restarts=10) is None

    def test_row_cap_respected(self, successor, predecessor):
        witness = search_random(
            [successor], predecessor, seed=0, max_rows=10
        )
        if witness is not None:
            assert len(witness) <= 10


class TestExhaustiveSearch:
    def test_typed_counterexample(self):
        schema = Schema(["A", "B"])
        # Typed pair of dependencies: the target is not implied.
        dep = parse_td("R(x, y) -> R(x, y)", schema)  # trivial, always holds
        target = parse_td("R(x, y) & R(x, y2) -> R(x2, y)", schema)
        witness = search_exhaustive([dep], target, domain_size=2)
        # target is trivial too (choose x2 = x)... so expect None.
        assert witness is None

    def test_finds_minimal_witness(self, schema):
        symmetry = parse_td("R(x, y) -> R(y, x)", schema)
        trivial = parse_td("R(x, y) -> R(x, y)", schema)
        witness = search_exhaustive([trivial], symmetry, domain_size=2)
        assert_genuine_counterexample(witness, [trivial], symmetry)
        assert len(witness) == 1  # smallest-first enumeration

    def test_untyped_dependencies_share_domain(self, schema, successor, predecessor):
        witness = search_exhaustive([successor], predecessor, domain_size=3)
        if witness is not None:
            assert_genuine_counterexample(witness, [successor], predecessor)

    def test_oversized_domain_refused(self):
        schema = Schema([f"A{i}" for i in range(10)])
        atom = "R(" + ", ".join(f"v{i}" for i in range(10)) + ")"
        td = parse_td(f"{atom} -> {atom}", schema)
        assert search_exhaustive([td], td, domain_size=3) is None


class TestCombinedSearch:
    def test_combined_finds_witness(self, successor, predecessor):
        witness = search_finite_counterexample([successor], predecessor)
        assert_genuine_counterexample(witness, [successor], predecessor)

    def test_combined_none_when_implied(self, schema, successor):
        same = parse_td("R(u, v) -> R(v, w)", schema)
        assert search_finite_counterexample([successor], same) is None

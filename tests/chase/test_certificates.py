"""Tests for certificate slicing and rendering (repro.chase.certificates)."""

import pytest

from repro.chase.budget import Budget
from repro.chase.certificates import (
    explain_outcome,
    explain_trace,
    goal_rows_of_outcome,
    minimize_proof,
    minimize_trace,
)
from repro.chase.engine import replay
from repro.chase.implication import InferenceStatus, conclusion_satisfied, implies
from repro.dependencies.parser import parse_td
from repro.relational.schema import Schema


@pytest.fixture
def schema():
    return Schema(["A", "B"])


@pytest.fixture
def transitivity(schema):
    return parse_td("R(x, y) & R(y, z) -> R(x, z)", schema)


@pytest.fixture
def proved_outcome(schema, transitivity):
    target = parse_td(
        "R(a, b) & R(b, c) & R(c, d) & R(d, e) -> R(a, e)", schema
    )
    outcome = implies([transitivity], target)
    assert outcome.status is InferenceStatus.PROVED
    return outcome


class TestMinimizeTrace:
    def test_sliced_trace_still_proves(self, proved_outcome):
        sliced = minimize_proof(proved_outcome)
        assert sliced is not None
        target = proved_outcome.target
        start, frozen = target.freeze()
        final = replay(start, sliced)  # verifies each step
        assert conclusion_satisfied(final, target, frozen)

    def test_sliced_no_longer_than_original(self, proved_outcome):
        sliced = minimize_proof(proved_outcome)
        full = proved_outcome.chase_result.steps
        assert len(sliced) <= len(full)

    def test_slice_keeps_producers_of_unlisted_conclusion_images(self, schema):
        """An EID step whose conjunct was already present must keep the
        step that produced it: honest ``added_rows`` omit the row, but
        verified replay still requires it to exist."""
        from repro.chase.engine import chase
        from repro.relational.instance import Instance
        from repro.relational.values import Const

        from repro.dependencies.parser import parse_dependency

        loop = parse_dependency("R(x, y) -> R(x, x)", schema)
        swap_and_loop = parse_dependency("R(x, y) -> R(y, x) & R(x, x)", schema)
        a, b = Const("a"), Const("b")
        start = Instance(schema, [(a, b)])
        goal_row = (b, a)
        result = chase(
            start, [loop, swap_and_loop], goal=lambda inst: goal_row in inst
        )
        sliced = minimize_trace(result.steps, {goal_row})
        final = replay(start, sliced, verify=True)  # must not raise
        assert goal_row in final

    def test_irrelevant_steps_dropped(self, schema, transitivity):
        """A second, unrelated dependency's firings get sliced away."""
        noise = parse_td("R(x, y) -> R(y, x)", schema)
        target = parse_td("R(a, b) & R(b, c) & R(c, d) -> R(a, d)", schema)
        outcome = implies([noise, transitivity], target)
        assert outcome.status is InferenceStatus.PROVED
        sliced = minimize_proof(outcome)
        # Symmetry rows never feed the transitive goal on a simple path...
        # they may appear if transitivity consumed them; at minimum the
        # sliced proof replays and is no longer than the original.
        start, frozen = target.freeze()
        final = replay(start, sliced)
        assert conclusion_satisfied(final, target, frozen)
        assert len(sliced) <= len(outcome.chase_result.steps)

    def test_goal_in_start_gives_empty_slice(self, schema, transitivity):
        target = parse_td("R(a, b) -> R(a, b)", schema)
        outcome = implies([transitivity], target)
        assert minimize_proof(outcome) == []

    def test_minimize_trace_direct(self, proved_outcome):
        goal = goal_rows_of_outcome(proved_outcome)
        assert goal is not None
        sliced = minimize_trace(proved_outcome.chase_result.steps, goal)
        produced = {row for step in sliced for row in step.added_rows}
        assert goal <= produced or not sliced

    def test_not_a_proof_returns_none(self, schema, transitivity):
        symmetry = parse_td("R(x, y) -> R(y, x)", schema)
        outcome = implies([transitivity], symmetry)
        assert minimize_proof(outcome) is None


class TestReductionProofSlicing:
    def test_guided_proofs_are_already_lean(self, positive_encoding):
        """The direction-(A) guided proof has little to slice away."""
        from repro.chase.implication import implies as chase_implies

        outcome = chase_implies(
            positive_encoding.dependencies,
            positive_encoding.d0,
            budget=Budget(max_steps=4_000, max_seconds=60),
        )
        assert outcome.status is InferenceStatus.PROVED
        sliced = minimize_proof(outcome)
        target = positive_encoding.d0
        start, frozen = target.freeze()
        final = replay(start, sliced)
        assert conclusion_satisfied(final, target, frozen)


class TestExplain:
    def test_explain_empty_trace(self):
        assert "empty trace" in explain_trace([])

    def test_explain_trace_numbers_steps(self, proved_outcome):
        text = explain_trace(proved_outcome.chase_result.steps)
        assert "  1. by" in text
        assert "add (" in text

    def test_explain_proved(self, proved_outcome):
        text = explain_outcome(proved_outcome)
        assert "PROVED" in text
        assert "essential step(s)" in text

    def test_explain_disproved(self, schema, transitivity):
        symmetry = parse_td("R(x, y) -> R(y, x)", schema)
        outcome = implies([transitivity], symmetry)
        text = explain_outcome(outcome)
        assert "DISPROVED" in text
        assert "counterexample" in text

    def test_explain_unknown(self, schema):
        successor = parse_td("R(x, y) -> R(y, s)", schema)
        predecessor = parse_td("R(x, y) -> R(p, x)", schema)
        outcome = implies([successor], predecessor, budget=Budget.small())
        text = explain_outcome(outcome)
        assert "UNKNOWN" in text


class TestExplainDegradesWithoutCertificate:
    """Regression: a PROVED outcome `minimize_proof` cannot slice used to
    hit `assert trace is not None` — a crash under `python` and silently
    skipped under `python -O`. Rendering must degrade, not fail."""

    def test_proved_without_chase_result(self, proved_outcome):
        from repro.chase.implication import InferenceOutcome

        bare = InferenceOutcome(
            status=InferenceStatus.PROVED, target=proved_outcome.target
        )
        text = explain_outcome(bare)
        assert "PROVED" in text
        assert "could not be minimized" in text
        assert "no replayable chase trace" in text

    def test_proved_without_frozen_assignment_shows_full_trace(
        self, proved_outcome
    ):
        from dataclasses import replace

        stripped = replace(proved_outcome, frozen_assignment=None)
        text = explain_outcome(stripped)
        assert "PROVED" in text
        assert "could not be minimized" in text
        # Degrades to the unsliced derivation, still numbered.
        assert "  1. by" in text

    def test_intact_outcome_unaffected(self, proved_outcome):
        text = explain_outcome(proved_outcome)
        assert "essential step(s)" in text
        assert "could not be minimized" not in text

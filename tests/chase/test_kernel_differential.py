"""Randomized differential tests: compiled kernel vs legacy engine.

The compiled kernel (:mod:`repro.chase.plan`) must be *semantically
indistinguishable* from the generic engine: identical
:class:`ChaseStatus` outcomes, identical implication verdicts,
``replay()``-valid traces, and final instances that agree up to null
renaming. Step *order* may differ (it already differs between hash-seed
runs of the legacy engine), so the comparisons here are semantic:

* full dependency sets have a unique fixpoint — final row sets must be
  literally equal across every kernel x variant combination;
* weakly acyclic embedded sets terminate under every order, and all
  terminating chase results of one input have isomorphic *cores* — the
  canonical "equal up to null renaming" witness;
* every recorded trace must replay, with verification on, to exactly
  the instance the run reported;
* implication outcomes (the service hot path) must agree verdict for
  verdict, and their certificates must check.
"""

import pytest

from repro.chase.budget import Budget
from repro.chase.engine import ChaseVariant, chase, replay
from repro.chase.implication import conclusion_satisfied, implies
from repro.chase.result import ChaseStatus
from repro.relational.core import core_of, homomorphically_equivalent
from repro.workloads.generators import (
    inference_workload,
    random_full_td,
    random_instance,
    weakly_acyclic_dependencies,
)

#: Every test runs under both join backends (the native leg skips
#: visibly when the extension is not built): the same seeds that hold
#: compiled ≡ legacy also hold native ≡ python.
pytestmark = pytest.mark.usefixtures("join_backend")

KERNELS = ("legacy", "compiled")
VARIANTS = (ChaseVariant.STANDARD, ChaseVariant.SEMI_NAIVE)


def _all_runs(instance, dependencies, **kwargs):
    """Chase under every kernel x variant; returns {(kernel, variant): result}."""
    return {
        (kernel, variant): chase(
            instance, dependencies, kernel=kernel, variant=variant, **kwargs
        )
        for kernel in KERNELS
        for variant in VARIANTS
    }


def _assert_replay_valid(start, result):
    """The trace, replayed with verification on, reproduces the result."""
    replayed = replay(start, result.steps, verify=True)
    assert replayed.rows == result.instance.rows


def _assert_equal_up_to_null_renaming(left, right):
    """Terminating chase results agree after core-canonicalization.

    Cores of homomorphically equivalent instances are isomorphic; for
    instances without nulls this degenerates to literal equality.
    """
    left_core, right_core = core_of(left), core_of(right)
    assert len(left_core) == len(right_core)
    assert homomorphically_equivalent(left_core, right_core)


class TestFullDependencySets:
    """No existentials: unique fixpoint, so every run must match exactly."""

    @pytest.mark.parametrize("seed", range(8))
    def test_identical_fixpoints_and_valid_traces(self, seed):
        dependencies = [
            random_full_td(seed=seed, antecedents=2 + seed % 2),
            random_full_td(seed=seed + 1_000, antecedents=2),
        ]
        start = random_instance(seed=seed, rows=10)
        results = _all_runs(start, dependencies)
        reference = results[("legacy", ChaseVariant.STANDARD)]
        assert reference.status is ChaseStatus.TERMINATED
        for (kernel, variant), result in results.items():
            assert result.status is ChaseStatus.TERMINATED, (kernel, variant)
            assert result.instance.rows == reference.instance.rows, (kernel, variant)
            _assert_replay_valid(start, result)


class TestWeaklyAcyclicEmbeddedSets:
    """Existential conclusions, but termination holds for every order."""

    @pytest.mark.parametrize("seed", range(8))
    def test_agreement_up_to_null_renaming(self, seed):
        dependencies = weakly_acyclic_dependencies(
            seed=seed, include_eids=(seed % 2 == 1)
        )
        start = random_instance(seed=seed, rows=8)
        results = _all_runs(start, dependencies)
        reference = results[("legacy", ChaseVariant.STANDARD)]
        assert reference.status is ChaseStatus.TERMINATED
        for (kernel, variant), result in results.items():
            assert result.status is ChaseStatus.TERMINATED, (kernel, variant)
            _assert_replay_valid(start, result)
            _assert_equal_up_to_null_renaming(
                result.instance, reference.instance
            )
            for dependency in dependencies:
                assert dependency.holds_in(result.instance), (kernel, variant)


class TestBudgetAndGoalParity:
    def test_forced_divergence_exhausts_identically(self):
        from repro.dependencies.parser import parse_td
        from repro.relational.instance import Instance
        from repro.relational.schema import Schema
        from repro.relational.values import Const

        schema = Schema(["A", "B"])
        successor = parse_td("R(x, y) -> R(y, z)", schema)
        start = Instance(schema, [(Const("a"), Const("b"))])
        for budget_steps in (1, 5, 9):
            results = _all_runs(
                start, [successor], budget=Budget(max_steps=budget_steps)
            )
            for key, result in results.items():
                # Every firing is forced (one chain), so even the step
                # counts must agree, not just the statuses.
                assert result.status is ChaseStatus.BUDGET_EXHAUSTED, key
                assert result.step_count == budget_steps, key
                _assert_replay_valid(start, result)

    def test_goal_reached_on_every_kernel(self):
        from repro.workloads.generators import transitivity_family

        dependencies, target = transitivity_family(6)
        start, frozen = target.freeze()
        results = _all_runs(
            start,
            dependencies,
            goal=lambda inst: conclusion_satisfied(inst, target, frozen),
        )
        for key, result in results.items():
            assert result.status is ChaseStatus.GOAL_REACHED, key


class TestImplicationDifferential:
    """The service hot path: verdicts must agree query for query."""

    @pytest.fixture(scope="class")
    def workload(self):
        return inference_workload(queries=40, duplicate_fraction=0.3, seed=7)

    def test_verdicts_agree_and_certificates_check(self, workload):
        dependencies, targets = workload
        budget = Budget(max_steps=2_000)
        for target in targets:
            outcomes = {
                (kernel, variant): implies(
                    dependencies,
                    target,
                    budget=budget,
                    variant=variant,
                    kernel=kernel,
                )
                for kernel in KERNELS
                for variant in VARIANTS
            }
            reference = outcomes[("legacy", ChaseVariant.STANDARD)]
            for key, outcome in outcomes.items():
                assert outcome.status is reference.status, (key, target)
                if outcome.proved:
                    start, frozen = target.freeze()
                    final = replay(
                        start, outcome.chase_result.steps, verify=True
                    )
                    assert conclusion_satisfied(final, target, frozen), key
                if outcome.disproved:
                    counterexample = outcome.counterexample
                    for dependency in dependencies:
                        assert dependency.holds_in(counterexample), key
                    assert target.find_violation(counterexample) is not None, key

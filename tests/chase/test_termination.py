"""Tests for weak-acyclicity termination analysis."""

import pytest

from repro.chase.budget import Budget
from repro.chase.engine import chase
from repro.chase.result import ChaseStatus
from repro.chase.termination import (
    dependency_graph,
    find_special_cycle,
    is_weakly_acyclic,
    termination_report,
)
from repro.dependencies.parser import parse_td
from repro.relational.schema import Schema
from repro.workloads.generators import random_full_td, random_instance


@pytest.fixture
def schema():
    return Schema(["A", "B"])


class TestDependencyGraph:
    def test_transitivity_graph(self, schema):
        transitivity = parse_td("R(x, y) & R(y, z) -> R(x, z)", schema)
        graph = dependency_graph([transitivity])
        # x: antecedent pos 0 -> conclusion pos 0; z: pos 1 -> pos 1.
        edges = {(s, t) for s, t, __ in graph.edges(data=True)}
        assert (0, 0) in edges
        assert (1, 1) in edges
        assert not any(d["special"] for *__, d in graph.edges(data=True))

    def test_successor_graph_has_special_edge(self, schema):
        successor = parse_td("R(x, y) -> R(y, s)", schema)
        graph = dependency_graph([successor])
        specials = [
            (s, t) for s, t, d in graph.edges(data=True) if d["special"]
        ]
        # y occurs at antecedent pos 1 and in the conclusion; s is
        # existential at pos 1: special edge 1 => 1.
        assert (1, 1) in specials

    def test_empty_set(self):
        assert dependency_graph([]).number_of_nodes() == 0
        assert is_weakly_acyclic([])


class TestWeakAcyclicity:
    def test_full_tds_always_weakly_acyclic(self, schema):
        """Full TDs have no existentials, hence no special edges."""
        for seed in range(10):
            td = random_full_td(seed=seed)
            assert is_weakly_acyclic([td])

    def test_transitivity_weakly_acyclic(self, schema):
        assert is_weakly_acyclic([parse_td("R(x, y) & R(y, z) -> R(x, z)", schema)])

    def test_successor_not_weakly_acyclic(self, schema):
        assert not is_weakly_acyclic([parse_td("R(x, y) -> R(y, s)", schema)])

    def test_acyclic_embedded_td(self, schema):
        """Existentials without a feedback loop stay weakly acyclic."""
        # x flows 0 -> 0, fresh value lands only in position 1, and
        # nothing flows out of position 1: no cycle at all.
        td = parse_td("R(x, y) -> R(x, w)", schema)
        assert is_weakly_acyclic([td])

    def test_two_tds_composing_into_special_cycle(self, schema):
        forward = parse_td("R(x, y) -> R(y, w)", schema)
        backward = parse_td("R(x, y) -> R(x, x)", schema)
        # forward alone: y (pos 1, in conclusion) => special to pos 1. Loop.
        assert not is_weakly_acyclic([forward, backward])

    def test_witness_cycle_contains_special_edge(self, schema):
        successor = parse_td("R(x, y) -> R(y, s)", schema)
        cycle = find_special_cycle([successor])
        assert cycle is not None
        assert any(edge.special for edge in cycle)


class TestGuarantee:
    """Weak acyclicity really does imply termination (spot checks)."""

    @pytest.mark.parametrize("seed", range(8))
    def test_weakly_acyclic_sets_terminate(self, seed):
        from repro.workloads.generators import random_td

        tds = [random_td(seed=seed + offset, arity=2) for offset in (0, 50)]
        if not is_weakly_acyclic(tds):
            pytest.skip("generated set not weakly acyclic")
        instance = random_instance(seed=seed, arity=2)
        result = chase(instance, tds, budget=Budget(max_steps=5_000, max_seconds=30))
        assert result.status is ChaseStatus.TERMINATED


class TestReductionEncodings:
    """The theorem-consistent observation: encodings are never weakly
    acyclic — otherwise the chase would decide the word problem."""

    def test_positive_encoding_not_weakly_acyclic(self, positive_encoding):
        assert not is_weakly_acyclic(positive_encoding.dependencies)

    def test_negative_encoding_not_weakly_acyclic(self, negative_encoding):
        assert not is_weakly_acyclic(negative_encoding.dependencies)

    def test_report_describes_witness(self, negative_encoding):
        report = termination_report(negative_encoding.dependencies)
        assert not report.weakly_acyclic
        assert report.special_edge_count > 0
        attributes = negative_encoding.reduction_schema.schema.attributes
        text = report.describe(attributes)
        assert "NOT weakly acyclic" in text
        assert "=>" in text


class TestReport:
    def test_positive_report(self, schema):
        transitivity = parse_td("R(x, y) & R(y, z) -> R(x, z)", schema)
        report = termination_report([transitivity])
        assert report.weakly_acyclic
        assert report.special_edge_count == 0
        assert "terminates" in report.describe()

"""Unit tests for repro.chase.trigger."""

import pytest

from repro.chase.trigger import Trigger, iter_active_triggers, iter_triggers
from repro.dependencies.parser import parse_td
from repro.dependencies.template import Variable
from repro.relational.instance import Instance
from repro.relational.schema import Schema
from repro.relational.values import Const


@pytest.fixture
def schema():
    return Schema(["A", "B"])


@pytest.fixture
def transitivity(schema):
    return parse_td("R(x, y) & R(y, z) -> R(x, z)", schema)


@pytest.fixture
def path(schema):
    a, b, c = Const("a"), Const("b"), Const("c")
    return Instance(schema, [(a, b), (b, c)])


class TestIterTriggers:
    def test_all_antecedent_matches_found(self, transitivity, path):
        triggers = list(iter_triggers(path, transitivity))
        # Matches: (a,b)+(b,c). Also degenerate x=y=z? needs (v,v) rows: none.
        assert len(triggers) == 1

    def test_trigger_bindings_cover_universals(self, transitivity, path):
        (trigger,) = iter_triggers(path, transitivity)
        assert {name for name, __ in trigger.bindings} == {"x", "y", "z"}

    def test_trigger_assignment_round_trip(self, transitivity, path):
        (trigger,) = iter_triggers(path, transitivity)
        assignment = trigger.assignment()
        assert assignment[Variable("x")] == Const("a")
        assert assignment[Variable("z")] == Const("c")

    def test_no_triggers_in_empty_instance(self, transitivity, schema):
        assert list(iter_triggers(Instance(schema), transitivity)) == []

    def test_triggers_hashable_and_stable(self, transitivity, path):
        first = list(iter_triggers(path, transitivity))
        second = list(iter_triggers(path, transitivity))
        assert set(first) == set(second)


class TestActivity:
    def test_active_when_conclusion_missing(self, transitivity, path):
        (trigger,) = iter_triggers(path, transitivity)
        assert trigger.is_active(path)

    def test_inactive_when_conclusion_present(self, transitivity, path):
        path.add((Const("a"), Const("c")))
        (trigger,) = iter_triggers(path, transitivity)
        assert not trigger.is_active(path)

    def test_iter_active_filters(self, transitivity, path):
        assert len(list(iter_active_triggers(path, transitivity))) == 1
        path.add((Const("a"), Const("c")))
        assert list(iter_active_triggers(path, transitivity)) == []

    def test_existential_conclusion_activity(self, schema, path):
        successor = parse_td("R(x, y) -> R(y, z)", schema)
        triggers = list(iter_active_triggers(path, successor))
        # (a,b): b has successor c -> inactive. (b,c): c has none -> active.
        assert len(triggers) == 1
        assert dict(triggers[0].bindings)["x"] == Const("b")


class TestConclusionRows:
    def test_rows_with_existential_values(self, schema, path):
        successor = parse_td("R(x, y) -> R(y, z)", schema)
        trigger = Trigger.make(
            successor,
            {Variable("x"): Const("b"), Variable("y"): Const("c")},
        )
        rows = trigger.conclusion_rows({Variable("z"): Const("fresh")})
        assert rows == [(Const("c"), Const("fresh"))]

    def test_eid_conclusion_shares_witness(self, schema):
        from repro.dependencies.parser import parse_dependency

        eid = parse_dependency("R(x, y) -> R(w, x) & R(w, y)", schema)
        trigger = Trigger.make(
            eid, {Variable("x"): Const("a"), Variable("y"): Const("b")}
        )
        rows = trigger.conclusion_rows({Variable("w"): Const("shared")})
        assert rows == [
            (Const("shared"), Const("a")),
            (Const("shared"), Const("b")),
        ]

"""Unit tests for repro.chase.engine."""

import pytest

from repro.chase.budget import Budget
from repro.chase.engine import ChaseVariant, apply_step, chase, replay
from repro.chase.result import ChaseStatus, ChaseStep
from repro.dependencies.parser import parse_td
from repro.errors import VerificationError
from repro.relational.instance import Instance
from repro.relational.schema import Schema
from repro.relational.values import Const, is_null


@pytest.fixture
def schema():
    return Schema(["A", "B"])


@pytest.fixture
def path(schema):
    a, b, c = Const("a"), Const("b"), Const("c")
    return Instance(schema, [(a, b), (b, c)])


@pytest.fixture
def transitivity(schema):
    return parse_td("R(x, y) & R(y, z) -> R(x, z)", schema)


class TestStandardChase:
    def test_full_td_reaches_fixpoint(self, path, transitivity):
        result = chase(path, [transitivity])
        assert result.status is ChaseStatus.TERMINATED
        assert (Const("a"), Const("c")) in result.instance

    def test_fixpoint_satisfies_dependencies(self, path, transitivity):
        result = chase(path, [transitivity])
        assert transitivity.holds_in(result.instance)

    def test_input_not_mutated_by_default(self, path, transitivity):
        chase(path, [transitivity])
        assert len(path) == 2

    def test_inplace_mutates(self, path, transitivity):
        result = chase(path, [transitivity], inplace=True)
        assert result.instance is path
        assert len(path) == 3

    def test_no_dependencies_terminates_immediately(self, path):
        result = chase(path, [])
        assert result.status is ChaseStatus.TERMINATED
        assert result.step_count == 0

    def test_satisfied_dependency_fires_nothing(self, path, transitivity):
        path.add((Const("a"), Const("c")))
        result = chase(path, [transitivity])
        assert result.step_count == 0

    def test_embedded_td_invents_nulls(self, schema):
        successor = parse_td("R(x, y) -> R(y, z)", schema)
        start = Instance(schema, [(Const("a"), Const("b"))])
        result = chase(start, [successor], budget=Budget(max_steps=5))
        assert result.status is ChaseStatus.BUDGET_EXHAUSTED
        nulls = [v for v in result.instance.active_domain() if is_null(v)]
        assert len(nulls) == 5

    def test_trace_records_steps(self, path, transitivity):
        result = chase(path, [transitivity])
        assert len(result.steps) == 1
        step = result.steps[0]
        assert step.dependency is transitivity
        assert step.added_rows == ((Const("a"), Const("c")),)

    def test_trace_disabled(self, path, transitivity):
        result = chase(path, [transitivity], record_trace=False)
        assert result.steps == []
        assert result.step_count == 1  # stats still count


class TestGoal:
    def test_goal_stops_early(self, schema, transitivity):
        # Long path: goal reached before full closure.
        nodes = [Const(f"n{i}") for i in range(8)]
        long_path = Instance(schema, [(nodes[i], nodes[i + 1]) for i in range(7)])
        target = (nodes[0], nodes[2])
        result = chase(
            long_path, [transitivity], goal=lambda inst: target in inst
        )
        assert result.status is ChaseStatus.GOAL_REACHED
        assert target in result.instance

    def test_goal_true_initially(self, path, transitivity):
        result = chase(path, [transitivity], goal=lambda inst: True)
        assert result.status is ChaseStatus.GOAL_REACHED
        assert result.step_count == 0

    def test_unreachable_goal_terminates(self, path, transitivity):
        result = chase(path, [transitivity], goal=lambda inst: False)
        assert result.status is ChaseStatus.TERMINATED


class TestBudgets:
    def test_step_budget(self, schema):
        successor = parse_td("R(x, y) -> R(y, z)", schema)
        start = Instance(schema, [(Const("a"), Const("b"))])
        result = chase(start, [successor], budget=Budget(max_steps=3))
        assert result.status is ChaseStatus.BUDGET_EXHAUSTED
        assert result.step_count == 3

    def test_row_budget(self, schema):
        successor = parse_td("R(x, y) -> R(y, z)", schema)
        start = Instance(schema, [(Const("a"), Const("b"))])
        result = chase(start, [successor], budget=Budget(max_rows=4))
        assert result.status is ChaseStatus.BUDGET_EXHAUSTED
        assert len(result.instance) == 4


class TestObliviousChase:
    def test_oblivious_fires_satisfied_triggers(self, path, transitivity):
        path.add((Const("a"), Const("c")))  # standard chase would be done
        result = chase(
            path, [transitivity], variant=ChaseVariant.OBLIVIOUS,
            budget=Budget(max_steps=50),
        )
        assert result.step_count >= 1

    def test_oblivious_never_refires_same_trigger(self, path, transitivity):
        result = chase(
            path,
            [transitivity],
            variant=ChaseVariant.OBLIVIOUS,
            budget=Budget(max_steps=500),
        )
        assert result.status is ChaseStatus.TERMINATED
        seen = {(id(step.dependency), step.bindings) for step in result.steps}
        assert len(seen) == len(result.steps)

    def test_oblivious_at_least_as_large_as_standard(self, path, transitivity):
        standard = chase(path, [transitivity])
        oblivious = chase(
            path, [transitivity], variant=ChaseVariant.OBLIVIOUS,
            budget=Budget(max_steps=500),
        )
        assert len(oblivious.instance) >= len(standard.instance)


class TestReplay:
    def test_replay_reproduces_result(self, path, transitivity):
        result = chase(path, [transitivity])
        replayed = replay(path, result.steps)
        assert replayed.rows == result.instance.rows

    def test_apply_step_verifies_trigger(self, path, transitivity):
        bogus = ChaseStep(
            dependency=transitivity,
            bindings=(("x", Const("zzz")), ("y", Const("b")), ("z", Const("c"))),
            added_rows=((Const("zzz"), Const("c")),),
        )
        with pytest.raises(VerificationError):
            apply_step(path, bogus)

    def test_apply_step_verifies_added_rows(self, path, transitivity):
        bogus = ChaseStep(
            dependency=transitivity,
            bindings=(("x", Const("a")), ("y", Const("b")), ("z", Const("c"))),
            added_rows=((Const("a"), Const("WRONG")),),
        )
        with pytest.raises(VerificationError):
            apply_step(path, bogus)

    def test_apply_step_verifies_row_count(self, path, transitivity):
        bogus = ChaseStep(
            dependency=transitivity,
            bindings=(("x", Const("a")), ("y", Const("b")), ("z", Const("c"))),
            added_rows=(),
        )
        with pytest.raises(VerificationError):
            apply_step(path, bogus)

    def test_forged_existential_witness_is_rejected(self, path, schema):
        """A crafted step that binds an existential to an existing value
        must not verify — it would 'prove' facts the dependency does not
        entail (e.g. a tampered cached certificate)."""
        invent = parse_td("R(x, y) -> R(x, z)", schema)  # z existential
        forged = ChaseStep(
            dependency=invent,
            bindings=(("x", Const("a")), ("y", Const("b"))),
            added_rows=((Const("a"), Const("a")),),  # z := a, not a fresh null
        )
        with pytest.raises(VerificationError):
            apply_step(path, forged)

    def test_reused_null_witness_is_rejected(self, path, schema):
        from repro.relational.values import LabeledNull

        stale = LabeledNull(7)
        path.add((Const("c"), stale))  # the null already lives in the instance
        invent = parse_td("R(x, y) -> R(x, z)", schema)
        forged = ChaseStep(
            dependency=invent,
            bindings=(("x", Const("a")), ("y", Const("b"))),
            added_rows=((Const("a"), stale),),
        )
        with pytest.raises(VerificationError):
            apply_step(path, forged)

    def test_identified_existentials_are_rejected(self, path, schema):
        from repro.relational.values import LabeledNull

        invent = parse_td("R(x, y) -> R(u, v)", schema)  # u, v both existential
        shared = LabeledNull(9)
        forged = ChaseStep(
            dependency=invent,
            bindings=(("x", Const("a")), ("y", Const("b"))),
            added_rows=((shared, shared),),  # one null serving two existentials
        )
        with pytest.raises(VerificationError):
            apply_step(path, forged)

    def test_existential_binding_smuggled_into_bindings_is_rejected(
        self, path, schema
    ):
        """Pre-binding the existential in step.bindings must not bypass
        the fresh-witness checks."""
        invent = parse_td("R(x, y) -> R(x, z)", schema)
        forged = ChaseStep(
            dependency=invent,
            bindings=(
                ("x", Const("a")),
                ("y", Const("b")),
                ("z", Const("evil")),  # smuggled existential binding
            ),
            added_rows=((Const("a"), Const("evil")),),
        )
        with pytest.raises(VerificationError):
            apply_step(path, forged)

    def test_honest_existential_steps_still_verify(self, schema):
        invent = parse_td("R(x, y) -> R(x, z)", schema)
        start = Instance(schema, [(Const("a"), Const("b"))])
        result = chase(start, [invent], budget=Budget(max_steps=3))
        replayed = replay(start, result.steps)  # verifies each step
        assert replayed.rows == result.instance.rows

    def test_apply_step_unverified_trusts_caller(self, path, transitivity):
        rogue = ChaseStep(
            dependency=transitivity,
            bindings=(),
            added_rows=((Const("u"), Const("v")),),
        )
        apply_step(path, rogue, verify=False)
        assert (Const("u"), Const("v")) in path


class TestChaseSemantics:
    def test_terminated_chase_is_universal_model(self, schema):
        """Terminated chase result satisfies every dependency."""
        deps = [
            parse_td("R(x, y) & R(y, z) -> R(x, z)", schema),
            parse_td("R(x, y) -> R(y, x)", schema),
        ]
        start = Instance(schema, [(Const("a"), Const("b"))])
        result = chase(start, deps)
        assert result.status is ChaseStatus.TERMINATED
        for dependency in deps:
            assert dependency.holds_in(result.instance)

    def test_eid_chase_shares_existential_witness(self, schema):
        from repro.dependencies.parser import parse_dependency

        eid = parse_dependency("R(x, y) -> R(w, x) & R(w, y)", schema)
        start = Instance(schema, [(Const("a"), Const("b"))])
        result = chase(start, [eid], budget=Budget(max_steps=10))
        first_step = result.steps[0]
        assert len(first_step.added_rows) == 2
        witness_left = first_step.added_rows[0][0]
        witness_right = first_step.added_rows[1][0]
        assert witness_left == witness_right  # one null serves both atoms

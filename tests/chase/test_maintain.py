"""Differential tests: maintained models vs from-scratch chases.

A :class:`~repro.chase.maintain.MaintainedModel` promises that after
*any* interleaving of inserts and deletes its instance is a universal
model of the surviving base facts — the same thing a from-scratch chase
of those facts computes. Chase results are unique only up to homomorphic
equivalence, so the comparisons here are the semantic invariants:

* the maintained instance and the fresh chase are homomorphically
  equivalent, with equal-size (isomorphic) cores;
* certain conjunctive-query answers agree exactly;
* implication verdicts (checked on the core) agree exactly.

The reference chase runs under both kernels (``kernel=`` parametrized
explicitly, so the suite is green under either ``REPRO_CHASE_KERNEL``
process default as well).
"""

import random

import pytest

from repro.chase.budget import Budget
from repro.chase.checkplan import find_violation
from repro.chase.engine import chase
from repro.chase.maintain import MaintainedModel
from repro.chase.result import ChaseStatus
from repro.dependencies.parser import parse_td
from repro.relational.core import core_of, homomorphically_equivalent
from repro.relational.instance import Instance
from repro.relational.queries import ConjunctiveQuery
from repro.relational.schema import Schema
from repro.relational.values import Const, is_null

#: Every test runs under both join backends (the native leg skips
#: visibly when the extension is not built): the same seeds that hold
#: compiled ≡ legacy also hold native ≡ python.
pytestmark = pytest.mark.usefixtures("join_backend")
from repro.workloads.generators import (
    random_instance,
    random_td,
    weakly_acyclic_dependencies,
)

KERNELS = ("compiled", "legacy")


def _queries_from(dependencies):
    """CQs whose bodies are the dependencies' antecedent conjunctions."""
    queries = []
    for dependency in dependencies:
        body = list(dependency.antecedents)
        variables = sorted(
            {variable for atom in body for variable in atom},
            key=lambda v: v.name,
        )
        queries.append(
            ConjunctiveQuery(dependency.schema, variables[:2], body)
        )
    return queries


def _certain_answers(query, instance):
    return {
        answer
        for answer in query.answers(instance)
        if not any(is_null(value) for value in answer)
    }


def _assert_equivalent(model, dependencies, kernel):
    """The maintained model vs a from-scratch chase of its base facts."""
    fresh = chase(
        Instance(model.schema, model.base), dependencies, kernel=kernel
    )
    assert fresh.status is ChaseStatus.TERMINATED
    assert homomorphically_equivalent(model.instance, fresh.instance)
    model_core = model.core()
    fresh_core = core_of(fresh.instance)
    assert len(model_core) == len(fresh_core)
    for query in _queries_from(dependencies):
        assert model.answer(query) == _certain_answers(query, fresh.instance)
    probes = list(dependencies) + [
        random_td(seed=len(model.base) * 13 + 7, existential_probability=0.5)
    ]
    for probe in probes:
        assert model.implies(probe) == (
            find_violation(probe, fresh_core) is None
        ), probe


class TestRandomInterleavings:
    """Insert/delete scripts against weakly acyclic programs."""

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("seed", range(6))
    def test_interleaved_inserts_and_deletes(self, seed, kernel):
        rng = random.Random(seed * 1009 + 17)
        dependencies = weakly_acyclic_dependencies(
            seed=seed, count=4, arity=3, include_eids=(seed % 2 == 0)
        )
        universe = list(
            random_instance(seed=seed + 400, rows=16, arity=3).rows
        )
        model = MaintainedModel(
            dependencies[0].schema,
            dependencies,
            rng.sample(universe, 8),
        )
        for __ in range(6):
            if model.base and rng.random() < 0.4:
                victims = rng.sample(
                    sorted(model.base, key=repr),
                    rng.randint(1, min(3, len(model.base))),
                )
                report = model.delete(victims)
                assert report.op == "delete"
                assert report.applied == len(set(victims))
            else:
                additions = rng.sample(universe, rng.randint(1, 4))
                report = model.insert(additions)
                assert report.op == "insert"
                assert report.overdeleted == 0
            assert model.saturated
            assert model.base <= set(model.instance.rows)
        _assert_equivalent(model, dependencies, kernel)

    @pytest.mark.parametrize("seed", range(4))
    def test_delete_everything_then_rebuild(self, seed):
        dependencies = weakly_acyclic_dependencies(seed=seed, count=3)
        rows = list(random_instance(seed=seed, rows=10).rows)
        model = MaintainedModel(dependencies[0].schema, dependencies, rows)
        model.delete(list(model.base))
        assert model.base == set()
        assert len(model.instance) == 0
        model.insert(rows)
        _assert_equivalent(model, dependencies, "compiled")


class TestDeletionSemantics:
    """The DRed over-delete/re-derive pass, on readable fixtures."""

    def setup_method(self):
        self.schema = Schema(["FROM", "TO"])
        self.transitivity = parse_td(
            "R(x, y) & R(y, z) -> R(x, z)", self.schema
        )

    def _consts(self, *names):
        return [Const(name) for name in names]

    def test_delete_removes_exactly_the_derivation_cone(self):
        a, b, c, d = self._consts("a", "b", "c", "d")
        model = MaintainedModel(
            self.schema,
            [self.transitivity],
            [(a, b), (b, c), (c, d)],
        )
        assert len(model.instance) == 6  # chain + 3 closures
        report = model.delete([(c, d)])
        assert report.applied == 1
        # (b,d), (a,d) were derived only through (c,d): over-deleted and
        # not re-derived; (a,c) survives via re-derivation.
        assert set(model.instance.rows) == {(a, b), (b, c), (a, c)}
        assert model.saturated

    def test_rederivation_through_surviving_path(self):
        a, b, c = self._consts("a", "b", "c")
        # (a,c) is derivable from the chain *and* asserted as base: the
        # cone walk must never remove a base fact.
        model = MaintainedModel(
            self.schema,
            [self.transitivity],
            [(a, b), (b, c), (a, c)],
        )
        report = model.delete([(b, c)])
        assert report.applied == 1
        assert set(model.instance.rows) == {(a, b), (a, c)}
        # And the other way around: a derived row re-derives when an
        # alternative support survives.
        model = MaintainedModel(
            self.schema,
            [self.transitivity],
            [(a, b), (b, c), (a, a)],
        )
        assert (a, c) in model.instance
        model.delete([(a, a)])
        assert (a, c) in model.instance  # still derivable from the chain

    def test_deleting_non_base_rows_is_a_noop(self):
        a, b, c = self._consts("a", "b", "c")
        model = MaintainedModel(
            self.schema, [self.transitivity], [(a, b), (b, c)]
        )
        derived = (a, c)
        assert derived in model.instance
        report = model.delete([derived, (c, a)])
        assert report.applied == 0
        assert report.overdeleted == 0
        assert derived in model.instance  # consequences are not assertions

    def test_insert_promotes_derived_row_to_base(self):
        a, b, c = self._consts("a", "b", "c")
        model = MaintainedModel(
            self.schema, [self.transitivity], [(a, b), (b, c)]
        )
        report = model.insert([(a, c)])  # already derived
        assert report.applied == 0  # not new in the instance...
        assert (a, c) in model.base  # ...but now an assertion
        model.delete([(a, b)])
        assert (a, c) in model.instance  # survives as a base fact


class TestBudgetsAndResumption:
    """Exhausted maintenance runs stay consistent and resumable."""

    def test_exhausted_insert_reports_and_resumes(self):
        schema = Schema(["FROM", "TO"])
        successor = parse_td("R(x, y) -> R(y, s)", schema)  # non-terminating
        model = MaintainedModel(
            schema,
            [successor],
            budget=Budget(max_steps=5, max_seconds=None),
        )
        report = model.insert([(Const("a"), Const("b"))])
        assert report.status is ChaseStatus.BUDGET_EXHAUSTED
        assert not model.saturated
        rows_before = len(model.instance)
        # An empty insert on an unsaturated model resumes the chase.
        resumed = model.insert([])
        assert resumed.steps > 0
        assert len(model.instance) > rows_before

    def test_terminating_insert_after_exhaustion_reports_status(self):
        schema = Schema(["FROM", "TO"])
        transitivity = parse_td("R(x, y) & R(y, z) -> R(x, z)", schema)
        model = MaintainedModel(
            schema,
            [transitivity],
            [(Const(i), Const(i + 1)) for i in range(6)],
            budget=Budget(max_steps=3, max_seconds=None),
        )
        assert not model.saturated
        model.budget = Budget()
        report = model.insert([])
        assert report.status is ChaseStatus.TERMINATED
        assert model.saturated
        fresh = chase(Instance(schema, model.base), [transitivity])
        assert homomorphically_equivalent(model.instance, fresh.instance)


class TestCheckerEpochRegression:
    """Equal-count discard+add must never leave a stale compiled view.

    The previous ModelChecker cached a detached KernelState and detected
    out-of-band mutation by row *count*; discarding one row and adding
    another left the count equal and the view stale. The subscribed
    kernel view (mutation hooks + epoch counter) closes that hole.
    """

    def test_equal_count_discard_add_stays_fresh(self):
        from repro.chase.checkplan import ModelChecker

        schema = Schema(["FROM", "TO"])
        symmetry = parse_td("R(x, y) -> R(y, x)", schema)
        a, b, c = Const("a"), Const("b"), Const("c")
        instance = Instance(schema, [(a, b), (b, a)])
        model = ModelChecker(instance, checker="compiled")
        assert model.holds_in(symmetry)
        # Same row count, different rows: the old count heuristic saw
        # "no mutation" here and kept serving the satisfied verdict.
        instance.discard((b, a))
        instance.add((b, c))
        assert not model.holds_in(symmetry)
        # Witness enumeration order may differ between checkers; what
        # must agree is the verdict, and the witness must be genuine.
        witness = model.find_violation(symmetry)
        image = tuple(witness[variable] for variable in symmetry.conclusion)
        assert tuple(witness[v] for v in symmetry.antecedents[0]) in instance
        assert image not in instance
        assert symmetry.find_violation(instance, checker="legacy") is not None
        # Epochs moved once per mutation; a third add syncs too.
        assert instance.epoch >= 4
        instance.add((c, b))
        instance.add((a, b))  # duplicate: no epoch bump, no view change
        assert not model.holds_in(symmetry)  # (b,a) still missing
        instance.add((b, a))
        assert model.holds_in(symmetry)

    def test_copy_detaches_the_view(self):
        schema = Schema(["FROM", "TO"])
        a, b = Const("a"), Const("b")
        instance = Instance(schema, [(a, b)])
        view = instance.kernel_view()
        clone = instance.copy()
        assert clone._view is None
        clone.add((b, a))
        # The original's subscribed view must not see the clone's row.
        assert view is instance.kernel_view()
        assert len(instance.kernel_view().rows_list) == 1

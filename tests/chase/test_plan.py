"""Unit tests for repro.chase.plan: compilation, dispatch, kernel state."""

import pytest

from repro.chase.plan import (
    Dispatcher,
    KernelState,
    compile_plan,
    compile_program,
)
from repro.dependencies.parser import parse_td
from repro.relational.instance import Instance
from repro.relational.schema import Schema
from repro.relational.values import Const


@pytest.fixture
def schema():
    return Schema(["A", "B"])


@pytest.fixture
def transitivity(schema):
    return parse_td("R(x, y) & R(y, z) -> R(x, z)", schema)


class TestJoinPlanCompilation:
    def test_universal_slots_are_name_sorted(self, transitivity):
        plan = compile_plan(transitivity)
        assert plan.n_universal == 3
        assert tuple(name for name, __ in plan.binding_pairs) == ("x", "y", "z")

    def test_existential_slots_follow_universals(self, schema):
        dependency = parse_td("R(x, y) -> R(x, z)", schema)
        plan = compile_plan(dependency)
        assert plan.n_universal == 2
        assert plan.existential_slots == (2,)
        assert [v.name for v in plan.existential_variables] == ["z"]

    def test_one_pivot_per_antecedent(self, transitivity):
        plan = compile_plan(transitivity)
        assert len(plan.pivots) == 2
        # Each pivot joins the one remaining atom in one step.
        for pivot in plan.pivots:
            assert len(pivot.steps) == 1

    def test_repeated_variable_atom_gets_a_pattern(self, schema):
        loop = parse_td("R(x, x) -> R(x, x)", schema)
        plan = compile_plan(loop)
        assert plan.pivots[0].pattern == ((0, 1),)

    def test_plan_cache_is_structural(self, schema):
        first = parse_td("R(x, y) & R(y, z) -> R(x, z)", schema)
        second = parse_td("R(x, y) & R(y, z) -> R(x, z)", schema)
        assert first is not second
        assert compile_plan(first) is compile_plan(second)

    def test_program_cache_reuses_dispatcher(self, transitivity):
        plans_a, dispatcher_a = compile_program([transitivity])
        plans_b, dispatcher_b = compile_program([transitivity])
        assert plans_a is plans_b
        assert dispatcher_a is dispatcher_b


class TestDispatcher:
    def test_trivial_when_no_atom_repeats_variables(self, transitivity):
        __, dispatcher = compile_program([transitivity])
        assert dispatcher.trivial

    def test_pattern_filters_rows(self, schema):
        loop = parse_td("R(x, x) -> R(x, x)", schema)
        plans, dispatcher = compile_program([loop])
        assert not dispatcher.trivial
        instance = Instance(schema)
        state = KernelState(instance)
        a = state.intern_row((Const("a"), Const("a")))
        ab = state.intern_row((Const("a"), Const("b")))
        seeds = dispatcher.seeds([a, ab])
        # Only the loop row reaches the pivot; (a, b) is filtered out.
        assert [irow for __, irow in seeds[0]] == [a]

    def test_shared_patterns_are_evaluated_once(self, schema):
        loop_one = parse_td("R(x, x) -> R(x, x)", schema)
        loop_two = parse_td("R(y, y) -> R(y, y)", schema)
        __, dispatcher = compile_program([loop_one, loop_two])
        # Both dependencies subscribe to the single distinct pattern.
        assert len(dispatcher.patterns) == 1
        assert len(dispatcher.subscribers[0]) == 2


class TestKernelState:
    def test_seed_rows_are_interned(self, schema):
        instance = Instance(schema, [(Const("a"), Const("b"))])
        state = KernelState(instance)
        assert len(state.irows) == 1
        assert state.rows_list[0] == state.intern_row((Const("a"), Const("b")))

    def test_add_keeps_instance_and_view_in_sync(self, schema):
        instance = Instance(schema, [(Const("a"), Const("b"))])
        state = KernelState(instance)
        row = (Const("b"), Const("c"))
        irow = state.add(row)
        assert irow is not None
        assert row in instance
        assert irow in state.irows
        assert instance.rows_with(0, Const("b"))  # live index updated
        assert state.add(row) is None  # duplicate

    def test_add_interned_round_trips_values(self, schema):
        instance = Instance(schema, [(Const("a"), Const("b"))])
        state = KernelState(instance)
        irow = state.intern_row((Const("x"), Const("y")))
        row = state.add_interned(irow)
        assert row == (Const("x"), Const("y"))
        assert row in instance
        assert state.add_interned(irow) is None
        # The snapshot cache was invalidated by the kernel-side insert.
        assert row in instance.rows

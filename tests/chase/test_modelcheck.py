"""Unit tests for repro.chase.modelcheck."""

import pytest

from repro.chase.modelcheck import all_violations, satisfies_all
from repro.dependencies.parser import parse_td
from repro.relational.instance import Instance
from repro.relational.schema import Schema
from repro.relational.values import Const


@pytest.fixture
def schema():
    return Schema(["A", "B"])


@pytest.fixture
def path(schema):
    return Instance(schema, [(Const("a"), Const("b")), (Const("b"), Const("c"))])


class TestSatisfiesAll:
    def test_empty_set_always_satisfied(self, path):
        assert satisfies_all(path, [])

    def test_detects_violation(self, path, schema):
        transitivity = parse_td("R(x, y) & R(y, z) -> R(x, z)", schema)
        assert not satisfies_all(path, [transitivity])

    def test_satisfied_after_closure(self, path, schema):
        transitivity = parse_td("R(x, y) & R(y, z) -> R(x, z)", schema)
        path.add((Const("a"), Const("c")))
        assert satisfies_all(path, [transitivity])

    def test_mixed_set_short_circuits_on_first_violation(self, path, schema):
        good = parse_td("R(x, y) -> R(x, y)", schema)
        bad = parse_td("R(x, y) -> R(y, x)", schema)
        assert not satisfies_all(path, [good, bad])


class TestAllViolations:
    def test_empty_when_satisfied(self, path, schema):
        reflexive_ish = parse_td("R(x, y) -> R(x, y)", schema)
        assert all_violations(path, [reflexive_ish]) == []

    def test_reports_each_violated_dependency_once(self, path, schema):
        transitivity = parse_td("R(x, y) & R(y, z) -> R(x, z)", schema)
        symmetry = parse_td("R(x, y) -> R(y, x)", schema)
        violations = all_violations(path, [transitivity, symmetry])
        assert len(violations) == 2
        assert {dep for dep, __ in violations} == {transitivity, symmetry}

    def test_witness_is_antecedent_binding(self, path, schema):
        symmetry = parse_td("R(x, y) -> R(y, x)", schema)
        ((__, witness),) = all_violations(path, [symmetry])
        assert set(variable.name for variable in witness) == {"x", "y"}

"""Unit tests for repro.relational.instance."""

import pytest

from repro.errors import ArityError, TypingError
from repro.relational.instance import Instance
from repro.relational.schema import Schema
from repro.relational.values import Const, LabeledNull


@pytest.fixture
def schema():
    return Schema(["A", "B"])


def row(*parts):
    return tuple(Const(part) for part in parts)


class TestMutation:
    def test_add_new_row(self, schema):
        instance = Instance(schema)
        assert instance.add(row("a", "b")) is True
        assert len(instance) == 1

    def test_add_duplicate_returns_false(self, schema):
        instance = Instance(schema, [row("a", "b")])
        assert instance.add(row("a", "b")) is False
        assert len(instance) == 1

    def test_add_wrong_arity(self, schema):
        with pytest.raises(ArityError):
            Instance(schema).add(row("a",))

    def test_add_all_counts_new_rows(self, schema):
        instance = Instance(schema, [row("a", "b")])
        added = instance.add_all([row("a", "b"), row("c", "d")])
        assert added == 1

    def test_discard_present(self, schema):
        instance = Instance(schema, [row("a", "b")])
        assert instance.discard(row("a", "b")) is True
        assert len(instance) == 0

    def test_discard_absent(self, schema):
        assert Instance(schema).discard(row("a", "b")) is False

    def test_discard_cleans_index(self, schema):
        instance = Instance(schema, [row("a", "b")])
        instance.discard(row("a", "b"))
        assert instance.rows_with(0, Const("a")) == frozenset()


class TestQueries:
    def test_contains(self, schema):
        instance = Instance(schema, [row("a", "b")])
        assert row("a", "b") in instance
        assert row("b", "a") not in instance

    def test_rows_snapshot_is_frozen(self, schema):
        instance = Instance(schema, [row("a", "b")])
        snapshot = instance.rows
        instance.add(row("c", "d"))
        assert len(snapshot) == 1

    def test_rows_with(self, schema):
        instance = Instance(schema, [row("a", "b"), row("a", "c"), row("x", "b")])
        assert len(instance.rows_with(0, Const("a"))) == 2

    def test_matching_rows_empty_pattern_yields_all(self, schema):
        instance = Instance(schema, [row("a", "b"), row("c", "d")])
        assert len(list(instance.matching_rows({}))) == 2

    def test_matching_rows_single_column(self, schema):
        instance = Instance(schema, [row("a", "b"), row("a", "c")])
        matches = list(instance.matching_rows({1: Const("c")}))
        assert matches == [row("a", "c")]

    def test_matching_rows_conjunction(self, schema):
        instance = Instance(schema, [row("a", "b"), row("a", "c"), row("x", "c")])
        matches = set(instance.matching_rows({0: Const("a"), 1: Const("c")}))
        assert matches == {row("a", "c")}

    def test_matching_rows_no_match(self, schema):
        instance = Instance(schema, [row("a", "b")])
        assert list(instance.matching_rows({0: Const("zzz")})) == []

    def test_column_values(self, schema):
        instance = Instance(schema, [row("a", "b"), row("a", "c")])
        assert instance.column_values(1) == {Const("b"), Const("c")}

    def test_active_domain(self, schema):
        instance = Instance(schema, [row("a", "b")])
        assert instance.active_domain() == {Const("a"), Const("b")}

    def test_bool(self, schema):
        assert not Instance(schema)
        assert Instance(schema, [row("a", "b")])

    def test_rows_snapshot_is_cached_until_mutation(self, schema):
        instance = Instance(schema, [row("a", "b")])
        first = instance.rows
        assert instance.rows is first  # cached, no rebuild per access
        instance.add(row("c", "d"))
        second = instance.rows
        assert second is not first
        assert second == frozenset({row("a", "b"), row("c", "d")})
        instance.discard(row("c", "d"))
        assert instance.rows == frozenset({row("a", "b")})

    def test_column_values_after_discard(self, schema):
        # Derived from the index keys: discard must not leave ghosts.
        instance = Instance(schema, [row("a", "b"), row("c", "b")])
        instance.discard(row("c", "b"))
        assert instance.column_values(0) == {Const("a")}
        assert instance.active_domain() == {Const("a"), Const("b")}

    def test_rows_with_is_live_view(self, schema):
        instance = Instance(schema, [row("a", "b")])
        bucket = instance.rows_with(0, Const("a"))
        instance.add(row("a", "c"))
        assert len(bucket) == 2  # a view, not a copy

    def test_rows_with_view_is_read_only(self, schema):
        instance = Instance(schema, [row("a", "b")])
        bucket = instance.rows_with(0, Const("a"))
        with pytest.raises(AttributeError):
            bucket.discard(row("a", "b"))  # no mutators on the view
        assert row("a", "b") in instance.rows_with(0, Const("a"))


class TestInternTable:
    def test_round_trip(self, schema):
        instance = Instance(schema, [row("a", "b")])
        table = instance.intern_table
        a = Const("a")
        idx = table.intern(a)
        assert table.values[idx] == a
        assert table.id_of(a) == idx
        assert table.id_of(Const("zzz")) is None

    def test_ids_are_dense_and_stable(self, schema):
        table = Instance(schema).intern_table
        ids = [table.intern(Const(name)) for name in ("x", "y", "x", "z")]
        assert ids == [0, 1, 0, 2]
        assert len(table) == 3

    def test_table_is_cached_per_instance(self, schema):
        instance = Instance(schema)
        assert instance.intern_table is instance.intern_table
        assert instance.copy().intern_table is not instance.intern_table


class TestTyping:
    def test_typed_instance_validates(self, schema):
        Instance(schema, [row("a", "b")]).validate()

    def test_value_in_two_columns_rejected(self, schema):
        instance = Instance(schema, [(Const("a"), Const("a"))])
        with pytest.raises(TypingError):
            instance.validate()
        assert not instance.is_typed()

    def test_cross_row_typing_violation(self, schema):
        instance = Instance(schema, [row("a", "b"), (Const("b"), Const("c"))])
        assert not instance.is_typed()


class TestDerivedInstances:
    def test_copy_is_independent(self, schema):
        original = Instance(schema, [row("a", "b")])
        clone = original.copy()
        clone.add(row("c", "d"))
        assert len(original) == 1
        assert len(clone) == 2

    def test_map_values(self, schema):
        instance = Instance(schema, [(Const("a"), LabeledNull(0))])
        grounded = instance.map_values(
            lambda value: Const("g") if isinstance(value, LabeledNull) else value
        )
        assert (Const("a"), Const("g")) in grounded

    def test_union(self, schema):
        left = Instance(schema, [row("a", "b")])
        right = Instance(schema, [row("c", "d")])
        assert len(left.union(right)) == 2

    def test_union_schema_mismatch(self, schema):
        other = Instance(Schema(["X", "Y", "Z"]))
        with pytest.raises(TypingError):
            Instance(schema).union(other)

    def test_induced(self, schema):
        instance = Instance(schema, [row("a", "b"), row("c", "d")])
        sub = instance.induced(lambda r: r[0] == Const("a"))
        assert sub.rows == frozenset({row("a", "b")})


class TestComparisonAndDisplay:
    def test_equality(self, schema):
        assert Instance(schema, [row("a", "b")]) == Instance(schema, [row("a", "b")])

    def test_unhashable(self, schema):
        with pytest.raises(TypeError):
            hash(Instance(schema))

    def test_pretty_contains_attributes(self, schema):
        text = Instance(schema, [row("a", "b")]).pretty()
        assert "A | B" in text
        assert "a | b" in text

    def test_pretty_truncates(self, schema):
        instance = Instance(schema, (row(f"a{i}", f"b{i}") for i in range(30)))
        assert "more rows" in instance.pretty(limit=5)

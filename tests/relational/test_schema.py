"""Unit tests for repro.relational.schema."""

import pytest

from repro.errors import ArityError, SchemaError
from repro.relational.schema import Schema


class TestConstruction:
    def test_attributes_preserved_in_order(self):
        schema = Schema(["A", "B", "C"])
        assert schema.attributes == ("A", "B", "C")

    def test_arity(self):
        assert Schema(["A", "B"]).arity == 2

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["A", "A"])

    def test_non_string_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["A", 3])

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Schema([""])

    def test_accepts_any_iterable(self):
        schema = Schema(name for name in ["X", "Y"])
        assert schema.arity == 2


class TestLookup:
    def test_position(self):
        schema = Schema(["A", "B", "C"])
        assert schema.position("B") == 1

    def test_position_unknown_raises(self):
        with pytest.raises(SchemaError):
            Schema(["A"]).position("Z")

    def test_attribute_by_position(self):
        schema = Schema(["A", "B"])
        assert schema.attribute(1) == "B"

    def test_attribute_out_of_range(self):
        with pytest.raises(SchemaError):
            Schema(["A"]).attribute(5)

    def test_attribute_negative_position(self):
        with pytest.raises(SchemaError):
            Schema(["A"]).attribute(-1)

    def test_contains(self):
        schema = Schema(["A", "B"])
        assert "A" in schema
        assert "Z" not in schema

    def test_iteration_and_len(self):
        schema = Schema(["A", "B", "C"])
        assert list(schema) == ["A", "B", "C"]
        assert len(schema) == 3


class TestEqualityAndHashing:
    def test_equal_schemas(self):
        assert Schema(["A", "B"]) == Schema(["A", "B"])

    def test_order_matters(self):
        assert Schema(["A", "B"]) != Schema(["B", "A"])

    def test_hashable(self):
        assert len({Schema(["A"]), Schema(["A"]), Schema(["B"])}) == 2

    def test_not_equal_to_other_types(self):
        assert Schema(["A"]) != ("A",)


class TestArityCheck:
    def test_check_arity_accepts_matching(self):
        Schema(["A", "B"]).check_arity(("x", "y"))

    def test_check_arity_rejects_short(self):
        with pytest.raises(ArityError):
            Schema(["A", "B"]).check_arity(("x",))

    def test_check_arity_rejects_long(self):
        with pytest.raises(ArityError):
            Schema(["A"]).check_arity(("x", "y"))

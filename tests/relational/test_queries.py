"""Tests for conjunctive queries (repro.relational.queries)."""

import pytest

from repro.dependencies.template import Variable
from repro.errors import DependencyError
from repro.relational.instance import Instance
from repro.relational.queries import ConjunctiveQuery
from repro.relational.schema import Schema
from repro.relational.values import Const


@pytest.fixture
def schema():
    return Schema(["FROM", "TO"])


def var(name):
    return Variable(name)


def cq(schema, head_names, body_specs):
    return ConjunctiveQuery(
        schema,
        [var(name) for name in head_names],
        [tuple(var(name) for name in atom) for atom in body_specs],
    )


@pytest.fixture
def path_db(schema):
    a, b, c = Const("a"), Const("b"), Const("c")
    return Instance(schema, [(a, b), (b, c)])


class TestConstruction:
    def test_basic(self, schema):
        query = cq(schema, ["x", "y"], [("x", "y")])
        assert len(query.body) == 1

    def test_empty_body_rejected(self, schema):
        with pytest.raises(DependencyError):
            ConjunctiveQuery(schema, [], [])

    def test_unsafe_head_rejected(self, schema):
        with pytest.raises(DependencyError):
            cq(schema, ["z"], [("x", "y")])

    def test_arity_mismatch_rejected(self, schema):
        with pytest.raises(DependencyError):
            cq(schema, ["x"], [("x",)])


class TestEvaluation:
    def test_edge_query(self, schema, path_db):
        query = cq(schema, ["x", "y"], [("x", "y")])
        assert query.answers(path_db) == {
            (Const("a"), Const("b")),
            (Const("b"), Const("c")),
        }

    def test_two_step_query(self, schema, path_db):
        query = cq(schema, ["x", "z"], [("x", "y"), ("y", "z")])
        assert query.answers(path_db) == {(Const("a"), Const("c"))}

    def test_projection(self, schema, path_db):
        query = cq(schema, ["x"], [("x", "y")])
        assert query.answers(path_db) == {(Const("a"),), (Const("b"),)}

    def test_boolean_query(self, schema, path_db):
        query = cq(schema, [], [("x", "y"), ("y", "z")])
        assert query.is_boolean()
        assert query.holds_in(path_db)

    def test_boolean_query_false(self, schema, path_db):
        loop = cq(schema, [], [("x", "x")])
        assert not loop.holds_in(path_db)

    def test_empty_instance(self, schema):
        query = cq(schema, ["x", "y"], [("x", "y")])
        assert query.answers(Instance(schema)) == set()


class TestContainment:
    def test_adding_conjuncts_shrinks_answers(self, schema):
        edge = cq(schema, ["x", "y"], [("x", "y")])
        edge_with_context = cq(schema, ["x", "y"], [("x", "y"), ("u", "v")])
        # More conjuncts -> fewer answers: edge_with_context ⊆ edge.
        assert edge_with_context.is_contained_in(edge)
        # And here the converse also holds (the extra conjunct folds onto
        # the first atom), so the two are equivalent -- the classic
        # redundancy that minimization removes.
        assert edge.is_contained_in(edge_with_context)
        assert edge_with_context.minimized() == edge

    def test_containment_answer_inclusion(self, schema, path_db):
        smaller = cq(schema, ["x", "z"], [("x", "y"), ("y", "z")])
        larger = cq(schema, ["x", "z"], [("x", "y"), ("u", "z")])
        assert smaller.is_contained_in(larger)
        assert smaller.answers(path_db) <= larger.answers(path_db)

    def test_non_containment(self, schema):
        edge = cq(schema, ["x", "y"], [("x", "y")])
        two_step = cq(schema, ["x", "z"], [("x", "y"), ("y", "z")])
        assert not edge.is_contained_in(two_step)

    def test_equivalence_of_renamings(self, schema):
        first = cq(schema, ["x", "z"], [("x", "y"), ("y", "z")])
        second = cq(schema, ["a", "c"], [("a", "b"), ("b", "c")])
        assert first.is_equivalent_to(second)

    def test_repeated_head_variable_alignment(self, schema):
        loop = cq(schema, ["x", "x"], [("x", "x")])
        pair = cq(schema, ["x", "y"], [("x", "y")])
        # loop ⊆ pair (every loop answer is an edge answer)...
        assert loop.is_contained_in(pair)
        # ...but not conversely.
        assert not pair.is_contained_in(loop)

    def test_arity_mismatch_not_contained(self, schema):
        unary = cq(schema, ["x"], [("x", "y")])
        binary = cq(schema, ["x", "y"], [("x", "y")])
        assert not unary.is_contained_in(binary)


class TestMinimization:
    def test_redundant_atom_folds_away(self, schema):
        query = cq(
            schema, ["x", "y"], [("x", "y"), ("x", "v")]
        )
        minimal = query.minimized()
        assert len(minimal.body) == 1
        assert minimal.is_equivalent_to(query)

    def test_core_query_unchanged(self, schema):
        query = cq(schema, ["x", "z"], [("x", "y"), ("y", "z")])
        assert query.minimized() == query

    def test_minimization_preserves_answers(self, schema, path_db):
        query = cq(
            schema,
            ["x", "z"],
            [("x", "y"), ("y", "z"), ("x", "v"), ("w", "z")],
        )
        minimal = query.minimized()
        assert minimal.answers(path_db) == query.answers(path_db)

    def test_head_variables_never_folded(self, schema):
        query = cq(schema, ["x", "y"], [("x", "y"), ("y", "y2")])
        minimal = query.minimized()
        head_vars = set(minimal.head)
        body_vars = {v for atom in minimal.body for v in atom}
        assert head_vars <= body_vars


class TestDisplay:
    def test_str(self, schema):
        query = cq(schema, ["x", "z"], [("x", "y"), ("y", "z")])
        assert str(query) == "q(x, z) :- R(x, y), R(y, z)"

    def test_hash_and_eq_ignore_body_order(self, schema):
        first = cq(schema, ["x"], [("x", "y"), ("y", "z")])
        second = cq(schema, ["x"], [("y", "z"), ("x", "y")])
        assert first == second
        assert hash(first) == hash(second)

"""Differential tests: compiled homomorphism engine vs the generic search.

The compiled engine (:mod:`repro.relational.homplan`) must be
*extensionally identical* to the reference engine
(:mod:`repro.relational.homomorphism`) — not just "finds one when one
exists" but the **same set of assignments** on every input, since
consumers enumerate (CQ answers, axiom search) and not only test. On
top of the raw-engine agreement, the consumer layers are held together:
cores computed by either engine are isomorphic, retraction searches
agree on properness, CQ containment verdicts match, and minimization is
idempotent and equivalence-preserving under both engines.
"""

import random

import pytest

from repro.relational.core import (
    core_of,
    find_retraction,
    homomorphically_equivalent,
    is_core,
)
from repro.relational.homomorphism import (
    apply_assignment,
    count_homomorphisms as legacy_count,
)
from repro.relational.homplan import (
    count_homomorphisms,
    extend_homomorphism,
    find_homomorphism,
    find_retraction_assignment,
    iter_homomorphisms,
    resolve_engine,
)
from repro.chase.budget import Budget
from repro.chase.engine import chase
from repro.chase.result import ChaseStatus
from repro.dependencies.template import is_variable
from repro.relational.instance import Instance

#: Every test runs under both join backends (the native leg skips
#: visibly when the extension is not built): the same seeds that hold
#: compiled ≡ legacy also hold native ≡ python.
pytestmark = pytest.mark.usefixtures("join_backend")
from repro.relational.values import LabeledNull, is_null
from repro.workloads.generators import (
    random_cq,
    random_instance,
    random_td,
    weakly_acyclic_dependencies,
)

ENGINES = ("legacy", "compiled")


def _assignment_set(source_rows, target, **kwargs):
    return {
        frozenset(h.items())
        for h in iter_homomorphisms(source_rows, target, **kwargs)
    }


def _nullify(instance, fraction, seed):
    """Replace a random subset of constants with fresh labelled nulls."""
    rng = random.Random(seed)
    mapping = {}

    def remap(value):
        if value not in mapping:
            if rng.random() < fraction:
                mapping[value] = LabeledNull(10_000 + len(mapping))
            else:
                mapping[value] = value
        return mapping[value]

    return instance.map_values(remap)


def _chased_with_nulls(seed):
    """A terminated chase result of a weakly acyclic embedded set."""
    dependencies = weakly_acyclic_dependencies(
        count=2, include_eids=True, seed=seed
    )
    start = random_instance(seed=seed, rows=6)
    result = chase(start, dependencies, budget=Budget(max_steps=400))
    assert result.status is ChaseStatus.TERMINATED
    return result.instance


class TestEngineAgreement:
    """Identical homomorphism *sets*, not just existence."""

    @pytest.mark.parametrize("seed", range(10))
    def test_null_flexible_assignment_sets(self, seed):
        source = _nullify(random_instance(seed=seed, rows=5), 0.5, seed)
        target = random_instance(seed=seed + 77, rows=8)
        sets = {
            engine: _assignment_set(source.rows, target, engine=engine)
            for engine in ENGINES
        }
        assert sets["compiled"] == sets["legacy"]

    @pytest.mark.parametrize("seed", range(10))
    def test_variable_flexible_assignment_sets(self, seed):
        """The dependency/CQ shape: variable atoms into a packed tableau."""
        source_td = random_td(seed=seed, antecedents=3)
        tableau_td = random_td(seed=seed + 500, antecedents=4)
        tableau = Instance(
            tableau_td.schema, (tuple(a) for a in tableau_td.antecedents)
        )
        sets = {
            engine: _assignment_set(
                source_td.antecedents, tableau, flexible=is_variable, engine=engine
            )
            for engine in ENGINES
        }
        assert sets["compiled"] == sets["legacy"]

    @pytest.mark.parametrize("seed", range(6))
    def test_partial_prebinding_agreement(self, seed):
        source = _nullify(random_instance(seed=seed, rows=5), 0.6, seed)
        target = random_instance(seed=seed + 31, rows=8)
        nulls = sorted(
            (v for v in source.active_domain() if is_null(v)),
            key=lambda v: v.label,
        )
        if not nulls:
            pytest.skip("no nulls drawn for this seed")
        # Pre-bind the first null to every value of its column in turn;
        # both engines must agree on every resulting (possibly empty) set.
        pinned = nulls[0]
        column = next(
            c
            for row in source.rows
            for c, v in enumerate(row)
            if v == pinned
        )
        for value in sorted(target.column_values(column), key=repr):
            partial = {pinned: value}
            sets = {
                engine: _assignment_set(
                    source.rows, target, partial=partial, engine=engine
                )
                for engine in ENGINES
            }
            assert sets["compiled"] == sets["legacy"]
            for assignment in sets["compiled"]:
                assert (pinned, value) in assignment

    def test_empty_source_yields_exactly_partial(self):
        target = random_instance(seed=3, rows=4)
        null = LabeledNull(1)
        some_value = next(iter(target.rows))[0]
        for engine in ENGINES:
            assignments = list(
                iter_homomorphisms(
                    [], target, partial={null: some_value}, engine=engine
                )
            )
            assert assignments == [{null: some_value}]

    def test_unseen_constant_matches_nothing(self):
        source = random_instance(seed=9, rows=3)
        target = random_instance(seed=10, rows=3, constants_per_column=2)
        for engine in ENGINES:
            found = find_homomorphism(source.rows, target, engine=engine)
            legacy_rows_present = all(row in target for row in source.rows)
            assert (found is not None) == legacy_rows_present

    @pytest.mark.parametrize("seed", range(5))
    def test_find_and_extend_consistent_with_sets(self, seed):
        source = _nullify(random_instance(seed=seed, rows=4), 0.5, seed + 1)
        target = random_instance(seed=seed + 13, rows=7)
        full = _assignment_set(source.rows, target, engine="legacy")
        for engine in ENGINES:
            found = find_homomorphism(source.rows, target, engine=engine)
            assert (found is not None) == bool(full)
            if found is not None:
                assert frozenset(found.items()) in full
                # An already-complete assignment must extend trivially.
                extended = extend_homomorphism(
                    found, source.rows, target, engine=engine
                )
                assert extended is not None
                assert frozenset(extended.items()) in full

    def test_resolve_engine_rejects_unknown(self):
        with pytest.raises(ValueError):
            resolve_engine("vectorized")


class TestCountLimits:
    """Regression: ``limit=0`` used to return 1 (post-increment check)."""

    def _fixture(self):
        target = random_instance(seed=2, rows=6)
        source = _nullify(random_instance(seed=2, rows=3), 0.7, 5)
        return source, target

    @pytest.mark.parametrize("engine", ENGINES)
    def test_limit_zero_is_zero(self, engine):
        source, target = self._fixture()
        assert (
            count_homomorphisms(source.rows, target, limit=0, engine=engine)
            == 0
        )

    def test_legacy_module_limit_zero_is_zero(self):
        source, target = self._fixture()
        assert legacy_count(source.rows, target, limit=0) == 0
        assert legacy_count(source.rows, target, limit=-3) == 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_limit_one_caps_at_one(self, engine):
        source, target = self._fixture()
        total = count_homomorphisms(source.rows, target, engine=engine)
        capped = count_homomorphisms(source.rows, target, limit=1, engine=engine)
        assert capped == min(1, total)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_unlimited_counts_agree(self, engine):
        source, target = self._fixture()
        assert count_homomorphisms(
            source.rows, target, engine=engine
        ) == legacy_count(source.rows, target)


class TestRetractionAndCores:
    @pytest.mark.parametrize("seed", range(6))
    def test_retraction_properness_agreement(self, seed):
        chased = _chased_with_nulls(seed)
        verdicts = {}
        for engine in ENGINES:
            assignment = find_retraction(chased, engine=engine)
            verdicts[engine] = assignment is not None
            if assignment is not None:
                # The witness must be a genuine proper retraction.
                image = {
                    apply_assignment(row, assignment) for row in chased.rows
                }
                assert image <= set(chased.rows)
                assert len(image) < len(chased)
        assert verdicts["compiled"] == verdicts["legacy"]

    @pytest.mark.parametrize("seed", range(6))
    def test_cores_isomorphic(self, seed):
        chased = _chased_with_nulls(seed)
        cores = {engine: core_of(chased, engine=engine) for engine in ENGINES}
        assert len(cores["compiled"]) == len(cores["legacy"])
        assert homomorphically_equivalent(cores["compiled"], cores["legacy"])
        for engine in ENGINES:
            assert is_core(cores["compiled"], engine=engine)
            assert is_core(cores["legacy"], engine=engine)
            # The core embeds back into what it retracted from.
            assert homomorphically_equivalent(
                chased, cores["compiled"], engine=engine
            )

    @pytest.mark.parametrize("seed", range(4))
    def test_retraction_assignment_with_partial(self, seed):
        """The CQ-minimization shape: body retraction fixing the head."""
        query = random_cq(seed=seed, body_atoms=3, redundant_atoms=2)
        body = [tuple(atom) for atom in query.body]
        body_instance = Instance(query.schema, body)
        head_identity = {variable: variable for variable in query.head}
        results = {}
        for engine in ENGINES:
            assignment = find_retraction_assignment(
                body,
                body_instance,
                partial=head_identity,
                flexible=is_variable,
                engine=engine,
            )
            results[engine] = assignment is not None
            if assignment is not None:
                for variable in query.head:
                    assert assignment[variable] == variable
                image = {
                    apply_assignment(atom, assignment, flexible=is_variable)
                    for atom in body
                }
                assert len(image) < len(body)
        assert results["compiled"] == results["legacy"]


class TestConjunctiveQueries:
    @pytest.mark.parametrize("seed", range(8))
    def test_containment_verdicts_identical(self, seed):
        first = random_cq(seed=seed, body_atoms=3, head_size=1)
        second = random_cq(seed=seed + 300, body_atoms=2, head_size=1)
        for left, right in ((first, second), (second, first), (first, first)):
            verdicts = {
                engine: left.is_contained_in(right, engine=engine)
                for engine in ENGINES
            }
            assert verdicts["compiled"] == verdicts["legacy"]

    @pytest.mark.parametrize("seed", range(8))
    def test_answers_identical(self, seed):
        query = random_cq(seed=seed, body_atoms=2, head_size=2)
        instance = random_instance(seed=seed + 41, rows=9)
        answers = {
            engine: query.answers(instance, engine=engine) for engine in ENGINES
        }
        assert answers["compiled"] == answers["legacy"]

    @pytest.mark.parametrize("seed", range(8))
    def test_minimized_idempotent_and_self_equivalent(self, seed):
        query = random_cq(seed=seed, body_atoms=3, redundant_atoms=3)
        for engine in ENGINES:
            minimized = query.minimized(engine=engine)
            # Idempotence: a minimized query has no redundancy left.
            assert minimized.minimized(engine=engine) == minimized
            # Equivalence is preserved (checked under both engines).
            for check_engine in ENGINES:
                assert query.is_equivalent_to(minimized, engine=check_engine)
                assert minimized.is_equivalent_to(minimized, engine=check_engine)
        # Minimal bodies are unique up to renaming: same size either way.
        assert len(query.minimized(engine="compiled").body) == len(
            query.minimized(engine="legacy").body
        )

"""Unit tests for repro.relational.core (instance cores)."""

import pytest

from repro.relational.core import (
    core_of,
    find_retraction,
    homomorphically_equivalent,
    is_core,
    null_count,
)
from repro.relational.instance import Instance
from repro.relational.schema import Schema
from repro.relational.values import Const, LabeledNull


@pytest.fixture
def schema():
    return Schema(["A", "B"])


class TestRetraction:
    def test_ground_instance_is_core(self, schema):
        instance = Instance(schema, [(Const("a"), Const("b"))])
        assert is_core(instance)
        assert find_retraction(instance) is None

    def test_redundant_null_row_retracts(self, schema):
        x = LabeledNull(0)
        instance = Instance(
            schema, [(Const("a"), Const("b")), (Const("a"), x)]
        )
        retraction = find_retraction(instance)
        assert retraction is not None
        assert retraction[x] == Const("b")

    def test_incomparable_null_rows_do_not_retract(self, schema):
        # (x, b) and (a, y): folding either away needs the other's
        # missing constant, so the instance is its own core.
        x, y = LabeledNull(0), LabeledNull(1)
        instance = Instance(schema, [(x, Const("b")), (Const("a"), y)])
        assert is_core(instance)


class TestCoreOf:
    def test_core_is_subinstance_semantically(self, schema):
        x = LabeledNull(0)
        instance = Instance(
            schema, [(Const("a"), Const("b")), (Const("a"), x)]
        )
        core = core_of(instance)
        assert core.rows == frozenset({(Const("a"), Const("b"))})

    def test_core_idempotent(self, schema):
        x, y = LabeledNull(0), LabeledNull(1)
        instance = Instance(
            schema,
            [(Const("a"), Const("b")), (Const("a"), x), (y, Const("b"))],
        )
        once = core_of(instance)
        twice = core_of(once)
        assert once == twice

    def test_core_of_core_free_instance_is_identity(self, schema):
        instance = Instance(
            schema, [(Const("a"), Const("b")), (Const("c"), Const("d"))]
        )
        assert core_of(instance) == instance

    def test_chain_of_nulls_collapses(self, schema):
        # Ground loop + null path that folds onto it entirely.
        a = Const("a")
        nulls = [LabeledNull(i) for i in range(4)]
        instance = Instance(schema, [(a, a)])
        instance.add((a, nulls[0]))
        for i in range(3):
            instance.add((nulls[i], nulls[i + 1]))
        core = core_of(instance)
        assert core.rows == frozenset({(a, a)})


class TestHomEquivalence:
    def test_instance_equivalent_to_its_core(self, schema):
        x = LabeledNull(0)
        instance = Instance(
            schema, [(Const("a"), Const("b")), (Const("a"), x)]
        )
        assert homomorphically_equivalent(instance, core_of(instance))

    def test_different_ground_instances_not_equivalent(self, schema):
        left = Instance(schema, [(Const("a"), Const("b"))])
        right = Instance(schema, [(Const("c"), Const("d"))])
        assert not homomorphically_equivalent(left, right)

    def test_schema_mismatch_not_equivalent(self, schema):
        other = Instance(Schema(["X"]), [(Const("a"),)])
        assert not homomorphically_equivalent(Instance(schema), other)


class TestNullCount:
    def test_counts_distinct_nulls(self, schema):
        x, y = LabeledNull(0), LabeledNull(1)
        instance = Instance(schema, [(x, y), (x, Const("b"))])
        assert null_count(instance) == 2

    def test_ground_instance_has_zero(self, schema):
        assert null_count(Instance(schema, [(Const("a"), Const("b"))])) == 0

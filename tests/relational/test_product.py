"""Unit tests for repro.relational.product."""

import pytest

from repro.errors import TypingError
from repro.relational.instance import Instance
from repro.relational.product import direct_product, pair_value, power
from repro.relational.schema import Schema
from repro.relational.values import Const
from repro.workloads.garment import figure1_dependency, garment_database


@pytest.fixture
def schema():
    return Schema(["A", "B"])


def make(schema, *rows):
    return Instance(schema, [tuple(Const(part) for part in r) for r in rows])


class TestDirectProduct:
    def test_size_is_product_of_sizes(self, schema):
        left = make(schema, ("a", "b"), ("c", "d"))
        right = make(schema, ("x", "y"), ("u", "v"), ("p", "q"))
        assert len(direct_product(left, right)) == 6

    def test_componentwise_pairs(self, schema):
        left = make(schema, ("a", "b"))
        right = make(schema, ("x", "y"))
        product = direct_product(left, right)
        expected = (pair_value(Const("a"), Const("x")), pair_value(Const("b"), Const("y")))
        assert expected in product

    def test_schema_mismatch_rejected(self, schema):
        other = Instance(Schema(["X"]))
        with pytest.raises(TypingError):
            direct_product(Instance(schema), other)

    def test_product_with_empty_is_empty(self, schema):
        left = make(schema, ("a", "b"))
        assert len(direct_product(left, Instance(schema))) == 0

    def test_product_preserves_typing(self, schema):
        left = make(schema, ("a", "b"))
        right = make(schema, ("x", "y"))
        direct_product(left, right).validate()


class TestPower:
    def test_power_one_is_copy(self, schema):
        instance = make(schema, ("a", "b"))
        assert power(instance, 1) == instance

    def test_power_two_sizes(self, schema):
        instance = make(schema, ("a", "b"), ("c", "d"))
        assert len(power(instance, 2)) == 4

    def test_power_zero_rejected(self, schema):
        with pytest.raises(ValueError):
            power(Instance(schema), 0)


class TestHornPreservation:
    """TDs are Horn-like, hence preserved under direct products."""

    def test_figure1_preserved_under_product(self):
        from repro.chase.engine import chase

        fig1 = figure1_dependency()
        # Repair the catalogue so it satisfies the dependency...
        satisfied = chase(garment_database(), [fig1]).instance
        assert fig1.holds_in(satisfied)
        # ...then the product with itself still satisfies it.
        squared = direct_product(satisfied, satisfied)
        assert fig1.holds_in(squared)

"""Unit tests for repro.relational.product."""

import pytest

from repro.errors import BudgetExceededError, TypingError
from repro.relational.instance import Instance
from repro.relational.product import (
    direct_product,
    iter_product_rows,
    pair_value,
    power,
)
from repro.relational.schema import Schema
from repro.relational.values import Const
from repro.workloads.garment import figure1_dependency, garment_database


@pytest.fixture
def schema():
    return Schema(["A", "B"])


def make(schema, *rows):
    return Instance(schema, [tuple(Const(part) for part in r) for r in rows])


class TestDirectProduct:
    def test_size_is_product_of_sizes(self, schema):
        left = make(schema, ("a", "b"), ("c", "d"))
        right = make(schema, ("x", "y"), ("u", "v"), ("p", "q"))
        assert len(direct_product(left, right)) == 6

    def test_componentwise_pairs(self, schema):
        left = make(schema, ("a", "b"))
        right = make(schema, ("x", "y"))
        product = direct_product(left, right)
        expected = (pair_value(Const("a"), Const("x")), pair_value(Const("b"), Const("y")))
        assert expected in product

    def test_schema_mismatch_rejected(self, schema):
        other = Instance(Schema(["X"]))
        with pytest.raises(TypingError):
            direct_product(Instance(schema), other)

    def test_product_with_empty_is_empty(self, schema):
        left = make(schema, ("a", "b"))
        assert len(direct_product(left, Instance(schema))) == 0

    def test_product_preserves_typing(self, schema):
        left = make(schema, ("a", "b"))
        right = make(schema, ("x", "y"))
        direct_product(left, right).validate()


class TestPower:
    def test_power_one_is_copy(self, schema):
        instance = make(schema, ("a", "b"))
        assert power(instance, 1) == instance

    def test_power_two_sizes(self, schema):
        instance = make(schema, ("a", "b"), ("c", "d"))
        assert len(power(instance, 2)) == 4

    def test_power_zero_rejected(self, schema):
        with pytest.raises(ValueError):
            power(Instance(schema), 0)


class TestStreamingAndGuards:
    def test_power_matches_repeated_direct_product(self, schema):
        # The streamed fold must nest pair values exactly like the
        # left-associated repeated product it replaces.
        instance = make(schema, ("a", "b"), ("c", "d"), ("e", "f"))
        folded = direct_product(direct_product(instance, instance), instance)
        assert power(instance, 3) == folded

    def test_direct_product_size_guard(self, schema):
        left = make(schema, ("a", "b"), ("c", "d"))
        right = make(schema, ("x", "y"), ("u", "v"), ("p", "q"))
        with pytest.raises(BudgetExceededError, match="max_rows"):
            direct_product(left, right, max_rows=5)
        assert len(direct_product(left, right, max_rows=6)) == 6

    def test_power_size_guard_fires_before_generating(self, schema):
        instance = make(schema, *[(f"a{i}", f"b{i}") for i in range(10)])
        with pytest.raises(BudgetExceededError, match="max_rows"):
            power(instance, 4, max_rows=9_999)  # 10^4 rows

    def test_power_one_ignores_guard_and_copies(self, schema):
        instance = make(schema, ("a", "b"))
        copy = power(instance, 1, max_rows=1)
        assert copy == instance
        assert copy is not instance

    def test_pair_values_are_interned_per_call(self, schema):
        left = make(schema, ("a", "b"), ("a", "d"))
        right = make(schema, ("x", "y"))
        rows = list(iter_product_rows(left, right))
        first_cells = {id(row[0]) for row in rows}
        # Both rows pair ("a", "x") in column 0: one shared Const object.
        assert len(first_cells) == 1

    def test_iter_product_rows_schema_mismatch(self, schema):
        with pytest.raises(TypingError):
            list(iter_product_rows(Instance(schema), Instance(Schema(["X"]))))


class TestHornPreservation:
    """TDs are Horn-like, hence preserved under direct products."""

    def test_figure1_preserved_under_product(self):
        from repro.chase.engine import chase

        fig1 = figure1_dependency()
        # Repair the catalogue so it satisfies the dependency...
        satisfied = chase(garment_database(), [fig1]).instance
        assert fig1.holds_in(satisfied)
        # ...then the product with itself still satisfies it.
        squared = direct_product(satisfied, satisfied)
        assert fig1.holds_in(squared)

"""Unit tests for repro.relational.values."""

from repro.relational.values import Const, LabeledNull, NullFactory, is_null


class TestConst:
    def test_equality_by_name(self):
        assert Const("a") == Const("a")
        assert Const("a") != Const("b")

    def test_hashable_consistently(self):
        assert len({Const("a"), Const("a"), Const("b")}) == 2

    def test_tuple_names_supported(self):
        assert Const(("frozen", "x")) == Const(("frozen", "x"))

    def test_str_and_repr(self):
        assert str(Const("BVD")) == "BVD"
        assert "BVD" in repr(Const("BVD"))

    def test_not_equal_to_null(self):
        assert Const(0) != LabeledNull(0)


class TestLabeledNull:
    def test_equality_by_label(self):
        assert LabeledNull(3) == LabeledNull(3)
        assert LabeledNull(3) != LabeledNull(4)

    def test_str_shows_label(self):
        assert str(LabeledNull(7)) == "_N7"

    def test_is_null_predicate(self):
        assert is_null(LabeledNull(0))
        assert not is_null(Const("a"))
        assert not is_null("plain string")


class TestNullFactory:
    def test_fresh_nulls_distinct(self):
        fresh = NullFactory()
        assert fresh() != fresh()

    def test_take_returns_requested_count(self):
        fresh = NullFactory()
        batch = fresh.take(5)
        assert len(batch) == 5
        assert len(set(batch)) == 5

    def test_start_offset(self):
        fresh = NullFactory(start=100)
        assert fresh().label == 100

    def test_independent_factories_overlap(self):
        # Factories are per-computation; separate runs may reuse labels.
        assert NullFactory()() == NullFactory()()

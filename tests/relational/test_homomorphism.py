"""Unit tests for repro.relational.homomorphism."""

import pytest

from repro.relational.homomorphism import (
    apply_assignment,
    count_homomorphisms,
    extend_homomorphism,
    find_homomorphism,
    is_homomorphism,
    iter_homomorphisms,
)
from repro.relational.instance import Instance
from repro.relational.schema import Schema
from repro.relational.values import Const, LabeledNull


@pytest.fixture
def schema():
    return Schema(["A", "B"])


@pytest.fixture
def target(schema):
    a, b, c = Const("a"), Const("b"), Const("c")
    return Instance(schema, [(a, b), (b, c), (a, c)])


class TestFind:
    def test_identity_embedding_of_constants(self, target):
        found = find_homomorphism([(Const("a"), Const("b"))], target)
        assert found == {}

    def test_missing_constant_row(self, target):
        assert find_homomorphism([(Const("c"), Const("a"))], target) is None

    def test_null_maps_anywhere(self, target):
        null = LabeledNull(0)
        found = find_homomorphism([(Const("a"), null)], target)
        assert found is not None
        assert found[null] in {Const("b"), Const("c")}

    def test_shared_null_must_join(self, schema, target):
        x = LabeledNull(0)
        # (a, x) and (x, c): x must be b.
        found = find_homomorphism([(Const("a"), x), (x, Const("c"))], target)
        assert found == {x: Const("b")}

    def test_unsatisfiable_join(self, target):
        x = LabeledNull(0)
        # (x, a) requires a in column B: absent.
        assert find_homomorphism([(x, Const("a"))], target) is None

    def test_partial_binding_respected(self, target):
        x = LabeledNull(0)
        found = find_homomorphism(
            [(Const("a"), x)], target, partial={x: Const("c")}
        )
        assert found == {x: Const("c")}

    def test_partial_binding_can_block(self, target):
        x = LabeledNull(0)
        assert (
            find_homomorphism([(x, Const("b"))], target, partial={x: Const("b")})
            is None
        )

    def test_empty_source_trivially_embeds(self, target):
        assert find_homomorphism([], target) == {}


class TestIterAndCount:
    def test_iter_yields_all(self, target):
        x = LabeledNull(0)
        images = {
            assignment[x]
            for assignment in iter_homomorphisms([(Const("a"), x)], target)
        }
        assert images == {Const("b"), Const("c")}

    def test_count(self, target):
        x, y = LabeledNull(0), LabeledNull(1)
        # Any row matches (x, y): three homomorphisms.
        assert count_homomorphisms([(x, y)], target) == 3

    def test_count_with_limit(self, target):
        x, y = LabeledNull(0), LabeledNull(1)
        assert count_homomorphisms([(x, y)], target, limit=2) == 2

    def test_yielded_dict_is_reused(self, target):
        x = LabeledNull(0)
        seen = list(iter_homomorphisms([(Const("a"), x)], target))
        # Both entries are the same (emptied) dict object; callers copy.
        assert seen[0] is seen[1]


class TestExtendAndCheck:
    def test_extend_succeeds(self, target):
        x = LabeledNull(0)
        extension = extend_homomorphism({}, [(Const("a"), x)], target)
        assert extension is not None

    def test_extend_fails(self, target):
        x = LabeledNull(0)
        assert extend_homomorphism({x: Const("a")}, [(x, Const("a"))], target) is None

    def test_is_homomorphism_true(self, target):
        x = LabeledNull(0)
        assert is_homomorphism({x: Const("b")}, [(Const("a"), x)], target)

    def test_is_homomorphism_false_wrong_image(self, target):
        x = LabeledNull(0)
        assert not is_homomorphism({x: Const("a")}, [(x, Const("a"))], target)

    def test_is_homomorphism_false_unbound(self, target):
        x = LabeledNull(0)
        assert not is_homomorphism({}, [(Const("a"), x)], target)

    def test_apply_assignment(self):
        x = LabeledNull(0)
        assert apply_assignment((Const("a"), x), {x: Const("b")}) == (
            Const("a"),
            Const("b"),
        )

    def test_apply_assignment_leaves_unbound(self):
        x = LabeledNull(0)
        assert apply_assignment((x,), {}) == (x,)


class TestCustomFlexibility:
    def test_everything_rigid(self, target):
        flexible = lambda term: False  # noqa: E731 - tiny test stub
        assert (
            find_homomorphism(
                [(Const("a"), Const("z"))], target, flexible=flexible
            )
            is None
        )

    def test_strings_as_variables(self, schema):
        target = Instance(schema, [(Const("a"), Const("b"))])
        flexible = lambda term: isinstance(term, str)  # noqa: E731
        found = find_homomorphism([("u", "v")], target, flexible=flexible)
        assert found == {"u": Const("a"), "v": Const("b")}


class TestScaling:
    def test_path_query_on_grid(self, schema):
        # A 20-node cycle; a length-5 path pattern has exactly 20 matches.
        nodes = [Const(f"n{i}") for i in range(20)]
        cycle = Instance(
            schema, [(nodes[i], nodes[(i + 1) % 20]) for i in range(20)]
        )
        path = []
        variables = [LabeledNull(i) for i in range(6)]
        for i in range(5):
            path.append((variables[i], variables[i + 1]))
        assert count_homomorphisms(path, cycle) == 20

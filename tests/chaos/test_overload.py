"""Load shedding, readiness and graceful drain under a live server."""

from __future__ import annotations

import threading
import time

import pytest

from repro.chase.budget import Budget
from repro.chase.implication import InferenceStatus
from repro.dependencies.parser import parse_td
from repro.service import (
    InferenceService,
    RetryPolicy,
    ServiceClient,
    ServiceOverloadedError,
    ServiceUnavailableError,
)
from repro.service.server import InferenceServer, ServerThread


def transitivity():
    return parse_td("R(x, y) & R(y, z) -> R(x, z)")


def chain(n: int):
    atoms = " & ".join(f"R(a{i}, a{i + 1})" for i in range(n))
    return parse_td(f"{atoms} -> R(a0, a{n})")


class TestShedding:
    def test_request_past_queue_capacity_is_shed_with_429(self):
        service = InferenceService()
        with ServerThread(service, max_queue=2) as handle:
            client = ServiceClient(handle.base_url)
            with pytest.raises(ServiceOverloadedError) as excinfo:
                client.batch(
                    [transitivity()], [chain(n) for n in range(2, 6)]
                )
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after is not None
            assert "queue" in excinfo.value.detail
            # Shedding is per-request: a request that fits is served.
            verdict = client.implies([transitivity()], chain(2))
            assert verdict.status is InferenceStatus.PROVED
            stats = client.stats()
            assert stats["server"]["shed"] == 1
            assert stats["batching"]["max_queue"] == 2

    def test_injected_shed_takes_the_real_429_path(self, arm_fault):
        arm_fault("shed", "/v1/implies")
        with ServerThread(InferenceService()) as handle:
            client = ServiceClient(handle.base_url)
            with pytest.raises(ServiceOverloadedError) as excinfo:
                client.implies([transitivity()], chain(2))
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after is not None
            # Other routes are untouched by the armed point.
            assert client.health()["status"] == "ok"
            assert "repro_fault_shed_total 1" in client.metrics_text()

    def test_retry_policy_rides_out_a_shed(self, arm_fault):
        # Latch: the first /v1/implies is shed, the retry is admitted.
        arm_fault("shed", "/v1/implies", latch=True)
        sleeps: list[float] = []
        with ServerThread(InferenceService()) as handle:
            client = ServiceClient(
                handle.base_url,
                retry=RetryPolicy(
                    max_attempts=3, base_delay=0.0, max_delay=0.0
                ),
                sleep=sleeps.append,
            )
            verdict = client.implies([transitivity()], chain(2))
            assert verdict.status is InferenceStatus.PROVED
            assert client.retries == 1
            assert len(sleeps) == 1


class TestDroppedConnections:
    def test_dropped_connection_is_a_typed_connection_error(self, arm_fault):
        from repro.service import ServiceConnectionError

        arm_fault("drop_conn", "/v1/stats")
        with ServerThread(InferenceService()) as handle:
            client = ServiceClient(handle.base_url)
            with pytest.raises(ServiceConnectionError):
                client.stats()
            # Only the armed path drops; liveness is unaffected.
            assert client.health()["status"] == "ok"

    def test_retry_policy_recovers_from_a_dropped_connection(
        self, arm_fault
    ):
        arm_fault("drop_conn", "/healthz", latch=True)
        sleeps: list[float] = []
        with ServerThread(InferenceService()) as handle:
            client = ServiceClient(
                handle.base_url,
                retry=RetryPolicy(
                    max_attempts=3, base_delay=0.0, max_delay=0.0
                ),
                sleep=sleeps.append,
            )
            assert client.health()["status"] == "ok"
            assert client.retries == 1


class TestReadiness:
    def test_readyz_reports_ready_with_queue_headroom(self):
        with ServerThread(InferenceService()) as handle:
            ready = ServiceClient(handle.base_url).ready()
            assert ready["status"] == "ready"
            assert ready["queued"] == 0
            assert ready["max_queue"] == 256

    def test_unstarted_server_reports_starting(self):
        server = InferenceServer(InferenceService())
        status, payload, headers = server._readyz()
        assert status == 503
        assert payload["status"] == "starting"
        assert headers["Retry-After"]

    def test_draining_server_goes_503_on_readyz_and_submissions(self):
        service = InferenceService()
        with ServerThread(service) as handle:
            client = ServiceClient(handle.base_url)
            assert client.ready()["status"] == "ready"
            # Flip the drain flag as stop() would (one bool write; the
            # event loop picks it up on the next request).
            handle.server._stopping = True
            with pytest.raises(ServiceUnavailableError) as excinfo:
                client.ready()
            assert excinfo.value.status == 503
            with pytest.raises(ServiceUnavailableError) as excinfo:
                client.implies([transitivity()], chain(2))
            assert excinfo.value.status == 503
            assert excinfo.value.retry_after is not None
            # Liveness stays green throughout the drain.
            assert client.health()["status"] == "ok"


class TestDrain:
    def test_stop_answers_inflight_queries_instead_of_cancelling(self):
        service = InferenceService()
        handle = ServerThread(
            service, batch_window=0.3, drain_timeout=20.0
        ).start()
        client = ServiceClient(handle.base_url)
        answers: dict = {}

        def call():
            try:
                answers["verdict"] = client.implies(
                    [transitivity()], chain(4), Budget(max_steps=2_000)
                )
            except Exception as error:  # pragma: no cover - failure path
                answers["error"] = error

        thread = threading.Thread(target=call)
        thread.start()
        # Let the query be admitted into the (wide) coalescing window,
        # then stop: drain must run the batch and answer it.
        time.sleep(0.1)
        handle.stop()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert "error" not in answers, answers.get("error")
        assert answers["verdict"].status is InferenceStatus.PROVED

"""Torn disk-cache lines: injected mid-append truncation, counted and
skipped on reload — plus checkpoint survival across a process restart."""

from __future__ import annotations

import logging

from repro.chase.budget import Budget
from repro.chase.implication import InferenceStatus
from repro.dependencies.parser import parse_td
from repro.obs.metrics import MetricsRegistry
from repro.service import InferenceService, JsonLinesStore, ResultCache


def transitivity():
    return parse_td("R(x, y) & R(y, z) -> R(x, z)")


def chain(n: int):
    atoms = " & ".join(f"R(a{i}, a{i + 1})" for i in range(n))
    return parse_td(f"{atoms} -> R(a0, a{n})")


class TestTornLines:
    def test_torn_append_is_skipped_counted_and_logged_once(
        self, tmp_path, arm_fault, monkeypatch, caplog
    ):
        path = tmp_path / "cache.jsonl"
        service = InferenceService(cache=ResultCache(store=JsonLinesStore(path)))
        service.run_batch([transitivity()], [chain(2)])  # a good line
        arm_fault("cache_tear", "*")
        service.run_batch([transitivity()], [chain(3)])  # torn mid-append
        monkeypatch.delenv("REPRO_FAULT_CACHE_TEAR")
        service.run_batch([transitivity()], [chain(4)])  # good again

        store = JsonLinesStore(path)
        with caplog.at_level(logging.WARNING, logger="repro.service.cache"):
            reloaded = ResultCache(store=store)
        # The torn verdict is recompute work, not a crash: the two good
        # lines load, the torn one is skipped and counted.
        assert len(reloaded) == 2
        assert store.torn_lines == 1
        warnings = [
            record
            for record in caplog.records
            if "torn cache line" in record.getMessage()
        ]
        assert len(warnings) == 1  # once per load, not per line

        registry = MetricsRegistry()
        reloaded.bind_metrics(registry)
        assert "repro_cache_torn_lines_total 1" in registry.render_prometheus()

    def test_tearing_targets_one_fingerprint(self, tmp_path, arm_fault):
        path = tmp_path / "cache.jsonl"
        service = InferenceService(cache=ResultCache(store=JsonLinesStore(path)))
        victim = service.submit([transitivity()], chain(2))
        service.discard_pending()
        arm_fault("cache_tear", victim)
        service.run_batch([transitivity()], [chain(2), chain(3)])
        store = JsonLinesStore(path)
        survivors = {entry.fingerprint for entry in store.load()}
        assert victim not in survivors
        assert len(survivors) == 1
        assert store.torn_lines == 1


class TestCheckpointSurvivesRestart:
    def test_resume_from_disk_after_process_restart(self, tmp_path):
        """An UNKNOWN's suspended chase outlives the process: a fresh
        service on the same cache file resumes it instead of re-chasing
        from row zero."""
        path = tmp_path / "cache.jsonl"
        premises = [transitivity()]
        target = chain(5)

        first = InferenceService(cache=ResultCache(store=JsonLinesStore(path)))
        starved = first.run_batch(premises, [target], budget=Budget(max_steps=2))
        assert starved.outcomes[0].status is InferenceStatus.UNKNOWN

        # "Restart": a brand-new service over the same file.
        second = InferenceService(cache=ResultCache(store=JsonLinesStore(path)))
        retry = second.run_batch(
            premises, [target], budget=Budget(max_steps=2_000)
        )
        assert retry.outcomes[0].status is InferenceStatus.PROVED
        assert retry.stats.resumed == 1
        assert retry.stats.executed == 0

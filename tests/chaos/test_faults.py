"""Unit tests for the fault-injection harness itself."""

from __future__ import annotations

from repro import faults


class TestFire:
    def test_unarmed_point_never_fires(self):
        assert faults.fire("worker_kill", 3) is False
        assert faults.fire("nonexistent_point") is False

    def test_exact_selector_matches_str_of_key(self, arm_fault):
        arm_fault("worker_kill", "3")
        assert faults.fire("worker_kill", 3) is True
        assert faults.fire("worker_kill", "3") is True
        assert faults.fire("worker_kill", 4) is False

    def test_star_matches_every_key(self, arm_fault):
        arm_fault("shed", "*")
        assert faults.fire("shed", "/v1/implies") is True
        assert faults.fire("shed", None) is True

    def test_armed_reflects_environment(self, arm_fault):
        assert faults.armed("cache_tear") is False
        arm_fault("cache_tear", "*")
        assert faults.armed("cache_tear") is True

    def test_latch_fires_exactly_once(self, arm_fault):
        latch = arm_fault("worker_kill", "*", latch=True)
        assert faults.fire("worker_kill", 1) is True
        assert latch.exists()
        # Any later match — same or different key, any process sharing
        # the latch file — stays quiet.
        assert faults.fire("worker_kill", 1) is False
        assert faults.fire("worker_kill", 2) is False

    def test_latch_only_consumed_by_matching_key(self, arm_fault):
        arm_fault("worker_kill", "7", latch=True)
        assert faults.fire("worker_kill", 3) is False  # no selector match
        assert faults.fire("worker_kill", 7) is True  # latch still fresh

    def test_unwritable_latch_disarms_instead_of_raising(
        self, monkeypatch, tmp_path
    ):
        missing = tmp_path / "no" / "such" / "dir" / "latch"
        monkeypatch.setenv("REPRO_FAULT_WORKER_KILL", f"*@{missing}")
        assert faults.fire("worker_kill", 1) is False

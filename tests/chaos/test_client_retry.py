"""RetryPolicy math and the client's typed error hierarchy."""

from __future__ import annotations

import pytest

from repro.dependencies.parser import parse_td
from repro.service import (
    InferenceService,
    RetryPolicy,
    ServiceClient,
    ServiceConnectionError,
    ServiceError,
    ServiceHTTPError,
    ServiceOverloadedError,
    ServiceUnavailableError,
)
from repro.service.server import ServerThread


class TestRetryPolicyMath:
    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0
        )
        delays = [policy.delay(n, rng=lambda: 1.0) for n in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_retry_after_stretches_the_delay_within_the_cap(self):
        policy = RetryPolicy(base_delay=0.01, max_delay=3.0, jitter=0.0)
        assert policy.delay(0, retry_after=2) == 2.0
        # Never beyond the cap, however insistent the server.
        assert policy.delay(0, retry_after=60) == 3.0

    def test_jitter_scales_into_the_configured_band(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=1.0, jitter=0.5)
        assert policy.delay(0, rng=lambda: 0.0) == 1.0
        assert policy.delay(0, rng=lambda: 1.0) == 0.5

    def test_invalid_policies_are_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=1.0, max_delay=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestTypedErrors:
    def test_errors_subclass_the_historical_base(self):
        # Callers that catch ServiceError keep working unchanged.
        for cls in (
            ServiceConnectionError,
            ServiceHTTPError,
            ServiceOverloadedError,
            ServiceUnavailableError,
        ):
            assert issubclass(cls, ServiceError)
        assert issubclass(ServiceOverloadedError, ServiceHTTPError)
        assert issubclass(ServiceUnavailableError, ServiceHTTPError)

    def test_client_errors_carry_status_and_server_detail(self):
        with ServerThread(InferenceService()) as handle:
            client = ServiceClient(handle.base_url)
            with pytest.raises(ServiceHTTPError) as excinfo:
                client.request("POST", "/v1/implies", {"dependencies": []})
            assert excinfo.value.status == 400
            assert "target" in excinfo.value.detail

    def test_connection_refused_is_a_connection_error(self):
        client = ServiceClient("http://127.0.0.1:1", timeout=2.0)
        with pytest.raises(ServiceConnectionError):
            client.health()

    def test_client_side_errors_are_never_retried(self):
        # A 400 would fail identically on resend: the retry loop must
        # pass it straight through without sleeping.
        sleeps: list[float] = []
        with ServerThread(InferenceService()) as handle:
            client = ServiceClient(
                handle.base_url,
                retry=RetryPolicy(max_attempts=5),
                sleep=sleeps.append,
            )
            with pytest.raises(ServiceHTTPError):
                client.request("POST", "/v1/implies", {"dependencies": []})
            assert client.retries == 0
            assert sleeps == []

    def test_exhausted_retries_raise_the_last_error(self):
        sleeps: list[float] = []
        client = ServiceClient(
            "http://127.0.0.1:1",
            timeout=2.0,
            retry=RetryPolicy(max_attempts=3, base_delay=0.0, max_delay=0.0),
            sleep=sleeps.append,
        )
        with pytest.raises(ServiceConnectionError):
            client.health()
        assert len(sleeps) == 2  # two retries between three attempts

    def test_verdicts_still_decode_through_a_retrying_client(self):
        from repro.chase.implication import InferenceStatus

        transitivity = parse_td("R(x, y) & R(y, z) -> R(x, z)")
        target = parse_td("R(a, b) & R(b, c) -> R(a, c)")
        with ServerThread(InferenceService()) as handle:
            client = ServiceClient(
                handle.base_url, retry=RetryPolicy(max_attempts=2)
            )
            verdict = client.implies([transitivity], target)
            assert verdict.status is InferenceStatus.PROVED

"""Shared fixtures for the chaos (fault-injection) suite.

Every test here arms :mod:`repro.faults` points through ``monkeypatch``
so the environment is restored afterwards — an armed point leaking into
a later test would be a fault injection of its own.
"""

from __future__ import annotations

import pytest

from repro.faults import PREFIX


@pytest.fixture
def arm_fault(monkeypatch, tmp_path):
    """Arm one fault point; returns the latch path when one is used.

    ``arm_fault("worker_kill", "*")`` fires on every match;
    ``arm_fault("worker_kill", "*", latch=True)`` fires exactly once
    across all processes sharing the latch file.
    """

    def arm(point: str, selector: str, *, latch: bool = False):
        latch_path = None
        spec = selector
        if latch:
            latch_path = tmp_path / f"{point}.latch"
            spec = f"{selector}@{latch_path}"
        monkeypatch.setenv(PREFIX + point.upper(), spec)
        return latch_path

    return arm

"""Worker crashes under a live HTTP server: containment, not 500s.

The regression suite for the crash-containment contract end to end:
a worker process dying mid-batch must cost a pool rebuild and a
re-dispatch, never an HTTP error or a lost verdict; a payload that
*keeps* killing workers must come back as a structured FAILED verdict,
not take the batch (or the server) down with it.
"""

from __future__ import annotations

import re

import pytest

from repro.chase.implication import InferenceStatus
from repro.dependencies.parser import parse_td
from repro.service import InferenceService, ServiceClient
from repro.service.server import ServerThread


def transitivity():
    return parse_td("R(x, y) & R(y, z) -> R(x, z)")


def chain(n: int):
    """``R(a0,a1) & ... -> R(a0,an)``: PROVED under transitivity."""
    atoms = " & ".join(f"R(a{i}, a{i + 1})" for i in range(n))
    return parse_td(f"{atoms} -> R(a0, a{n})")


def metric_value(text: str, name: str) -> float:
    for line in text.splitlines():
        if re.match(rf"{re.escape(name)}(\{{[^}}]*\}})? ", line):
            return float(line.rsplit(" ", 1)[1])
    return 0.0


class TestWorkerKill:
    def test_killed_worker_is_contained_and_verdicts_survive(
        self, arm_fault
    ):
        # Latch: exactly one dispatch, in whichever worker gets it,
        # calls os._exit(1) mid-batch. Armed before the ServerThread
        # starts so the pool initializer ships the spec to workers.
        arm_fault("worker_kill", "*", latch=True)
        service = InferenceService(workers=2)
        with ServerThread(service, batch_window=0.02) as handle:
            client = ServiceClient(handle.base_url)
            answer = client.batch(
                [transitivity()], [chain(n) for n in range(2, 7)]
            )
            # No 500, no lost slots: every query gets its real verdict
            # even though a worker died holding some of them.
            assert answer.statuses == [InferenceStatus.PROVED] * 5
            text = client.metrics_text()
            assert metric_value(text, "repro_fault_pool_restarts_total") >= 1
            assert metric_value(text, "repro_fault_redispatched_total") >= 1
            assert metric_value(text, "repro_fault_quarantined_total") == 0
            # The server itself never saw an HTTP error.
            stats = client.stats()
            assert stats["server"]["http_errors"] == 0

    def test_persistent_killer_is_quarantined_as_failed(self, arm_fault):
        # No latch: the payload kills every worker that ever takes it.
        # After CRASH_LIMIT pool crashes with it in flight, it must be
        # quarantined as a structured FAILED verdict — an operational
        # outcome asserting nothing about D |= d — not as an HTTP 500.
        arm_fault("worker_kill", "*")
        service = InferenceService(workers=1)
        with ServerThread(service, batch_window=0.0) as handle:
            client = ServiceClient(handle.base_url)
            verdict = client.implies([transitivity()], chain(2))
            assert verdict.status is InferenceStatus.FAILED
            assert verdict.outcome.error  # operator-readable reason
            text = client.metrics_text()
            assert metric_value(text, "repro_fault_quarantined_total") >= 1
            assert client.stats()["server"]["http_errors"] == 0

    def test_failed_is_never_cached_so_recovery_is_immediate(
        self, arm_fault, monkeypatch
    ):
        latch = arm_fault("worker_kill", "*")  # persistent while armed
        service = InferenceService(workers=1)
        with ServerThread(service, batch_window=0.0) as handle:
            client = ServiceClient(handle.base_url)
            assert (
                client.implies([transitivity()], chain(3)).status
                is InferenceStatus.FAILED
            )
            # Disarm and re-ask: the quarantine must not have been
            # memoized — the same query now chases and resolves.
            monkeypatch.delenv("REPRO_FAULT_WORKER_KILL")
            verdict = client.implies([transitivity()], chain(3))
            assert verdict.status is InferenceStatus.PROVED
            assert not verdict.from_cache
        assert latch is None  # selector mode: no latch file involved


class TestRestartBudget:
    def test_zero_restart_budget_fails_fast_without_raising(self, arm_fault):
        arm_fault("worker_kill", "*", latch=True)
        service = InferenceService(workers=1, max_restarts=0)
        with ServerThread(service, batch_window=0.0) as handle:
            client = ServiceClient(handle.base_url)
            verdict = client.implies([transitivity()], chain(2))
            # Budget exhausted on the first crash: FAILED, not a 500.
            assert verdict.status is InferenceStatus.FAILED
            assert "restart budget" in (verdict.outcome.error or "")
        # The next server (fault latched away) works normally.
        with ServerThread(InferenceService(workers=1)) as handle:
            client = ServiceClient(handle.base_url)
            assert (
                client.implies([transitivity()], chain(2)).status
                is InferenceStatus.PROVED
            )


class TestPoolMaxRestartsWiring:
    def test_service_threads_max_restarts_to_its_pool(self):
        service = InferenceService(workers=1, max_restarts=7)
        try:
            assert service.pool().max_restarts == 7
        finally:
            service.close()

    def test_negative_max_restarts_rejected(self):
        with pytest.raises(ValueError):
            InferenceService(workers=1, max_restarts=-1)

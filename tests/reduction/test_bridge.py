"""Unit tests for repro.reduction.bridge (Figure 2)."""

import pytest

from repro.errors import ReductionError, VerificationError
from repro.reduction.bridge import Bridge, bridge_instance
from repro.reduction.schema import BOTTOM_ROW, TOP_ROW, ReductionSchema


@pytest.fixture
def schema():
    return ReductionSchema(("A0", "B", "0"))


class TestBridgeInstance:
    @pytest.mark.parametrize("length", [1, 2, 3, 6])
    def test_tuple_count_is_2k_plus_1(self, schema, length):
        word = tuple(["A0", "B", "0"][i % 3] for i in range(length))
        instance, bridge = bridge_instance(schema, word)
        assert bridge.tuple_count == 2 * length + 1
        assert len(instance) == bridge.tuple_count

    def test_bottom_row_shares_e(self, schema):
        __, bridge = bridge_instance(schema, ("A0", "B"))
        column = schema.schema.position(BOTTOM_ROW)
        assert len({row[column] for row in bridge.bottom}) == 1

    def test_apexes_share_e_prime(self, schema):
        __, bridge = bridge_instance(schema, ("A0", "B"))
        column = schema.schema.position(TOP_ROW)
        assert len({row[column] for row in bridge.apexes}) == 1

    def test_triangles_agree_with_bases(self, schema):
        __, bridge = bridge_instance(schema, ("A0", "B"))
        bridge.check()  # structural invariants hold

    def test_non_forced_components_distinct(self, schema):
        """The bridge realises exactly the figure's agreements."""
        instance, bridge = bridge_instance(schema, ("A0",))
        # The two bottom tuples agree ONLY on E.
        left, right = bridge.bottom
        agreements = [
            column
            for column in range(schema.schema.arity)
            if left[column] == right[column]
        ]
        assert agreements == [schema.schema.position(BOTTOM_ROW)]

    def test_unknown_letter_rejected(self, schema):
        with pytest.raises(ReductionError):
            bridge_instance(schema, ("Z",))

    def test_instance_is_typed(self, schema):
        instance, __ = bridge_instance(schema, ("A0", "B", "0"))
        instance.validate()

    def test_span_endpoints(self, schema):
        __, bridge = bridge_instance(schema, ("A0", "B"))
        a, b = bridge.span
        assert a == bridge.bottom[0]
        assert b == bridge.bottom[-1]


class TestBridgeCheck:
    def test_wrong_bottom_count_detected(self, schema):
        __, bridge = bridge_instance(schema, ("A0",))
        broken = Bridge(schema, ("A0",), bridge.bottom[:1], bridge.apexes)
        with pytest.raises(VerificationError):
            broken.check()

    def test_wrong_apex_count_detected(self, schema):
        __, bridge = bridge_instance(schema, ("A0",))
        broken = Bridge(schema, ("A0",), bridge.bottom, [])
        with pytest.raises(VerificationError):
            broken.check()

    def test_broken_e_row_detected(self, schema):
        __, bridge = bridge_instance(schema, ("A0", "B"))
        __, other = bridge_instance(schema, ("A0",), token="other")
        broken = Bridge(
            schema,
            ("A0", "B"),
            [bridge.bottom[0], other.bottom[0], bridge.bottom[2]],
            bridge.apexes,
        )
        with pytest.raises(VerificationError):
            broken.check()

    def test_wrong_triangle_detected(self, schema):
        __, bridge = bridge_instance(schema, ("A0", "B"))
        swapped = Bridge(
            schema,
            ("A0", "B"),
            bridge.bottom,
            [bridge.apexes[1], bridge.apexes[0]],
        )
        with pytest.raises(VerificationError):
            swapped.check()

    def test_mislabelled_word_detected(self, schema):
        __, bridge = bridge_instance(schema, ("A0", "B"))
        relabelled = Bridge(schema, ("B", "A0"), bridge.bottom, bridge.apexes)
        with pytest.raises(VerificationError):
            relabelled.check()

"""Unit tests for repro.reduction.theorem (the end-to-end drivers)."""

import pytest

from repro.chase.budget import Budget
from repro.chase.implication import InferenceStatus
from repro.errors import ReductionError
from repro.reduction.theorem import (
    InstanceClass,
    classify_instance,
    prove_direction_a,
    prove_direction_b,
)
from repro.workloads.instances import (
    gap_instance,
    negative_instance,
    positive_chain_family,
    positive_instance,
)


class TestDirectionA:
    def test_positive_instance_proved(self, positive):
        report = prove_direction_a(positive)
        assert report.derivation.length >= 1
        report.proof.verify()

    def test_cross_check_with_generic_chase(self, positive):
        report = prove_direction_a(positive, cross_check=True)
        assert report.generic_outcome.status is InferenceStatus.PROVED

    def test_negative_instance_raises(self, negative):
        with pytest.raises(ReductionError):
            prove_direction_a(negative, max_visited=2_000)

    def test_describe(self, positive):
        report = prove_direction_a(positive)
        assert "CONFIRMED" in report.describe()


class TestDirectionB:
    def test_negative_instance_confirmed(self, negative):
        report = prove_direction_b(negative)
        assert report.report.ok

    def test_positive_instance_raises(self, positive):
        with pytest.raises(ReductionError):
            prove_direction_b(positive, max_semigroup_size=4)

    def test_gap_instance_raises(self, gap):
        with pytest.raises(ReductionError):
            prove_direction_b(gap, max_semigroup_size=4)

    def test_describe(self, negative):
        report = prove_direction_b(negative)
        assert "counter-semigroup" in report.describe()


class TestClassification:
    def test_positive(self, positive):
        outcome = classify_instance(positive)
        assert outcome.instance_class is InstanceClass.A0_COLLAPSES
        assert outcome.direction_a is not None

    def test_negative(self, negative):
        outcome = classify_instance(negative)
        assert outcome.instance_class is InstanceClass.FINITELY_REFUTABLE
        assert outcome.direction_b is not None

    def test_gap_is_unknown(self, gap):
        outcome = classify_instance(gap, max_semigroup_size=4)
        assert outcome.instance_class is InstanceClass.UNKNOWN
        assert outcome.direction_a is None
        assert outcome.direction_b is None

    def test_chain_family_positive(self):
        outcome = classify_instance(positive_chain_family(2))
        assert outcome.instance_class is InstanceClass.A0_COLLAPSES

    def test_describe(self, positive):
        assert "a0_collapses" in classify_instance(positive).describe()


class TestSemanticCoherence:
    """The two directions agree with the generic inference machinery."""

    def test_positive_encoding_d0_not_finitely_refutable(
        self, positive_encoding
    ):
        """For a positive instance no finite counterexample can exist:
        the model checker must reject every candidate the negative
        machinery would build. (Indirect: the counter-model search space
        is empty, already covered; here we check the chase cannot
        terminate without satisfying D0.)"""
        from repro.chase.implication import implies

        outcome = implies(
            positive_encoding.dependencies,
            positive_encoding.d0,
            budget=Budget(max_steps=4_000, max_seconds=120),
        )
        assert outcome.status is InferenceStatus.PROVED

    def test_negative_database_refutes_generic_implication(
        self, negative_encoding
    ):
        """The direction-(B) database is a genuine counterexample for the
        generic model checker."""
        report = prove_direction_b(negative_instance())
        instance = report.report.database.instance
        assert negative_encoding.d0.find_violation(instance) is not None

"""Unit tests for repro.reduction.dependencies (Figure 3)."""

import pytest

from repro.dependencies.diagram import diagram_of
from repro.errors import ReductionError
from repro.reduction.dependencies import (
    build_td,
    d0_dependency,
    equation_dependencies,
)
from repro.reduction.schema import BOTTOM_ROW, TOP_ROW, ReductionSchema
from repro.semigroups.presentation import Equation


@pytest.fixture
def schema():
    return ReductionSchema(("A0", "B", "C", "0"))


@pytest.fixture
def equation():
    return Equation.make(["A0", "B"], ["C"])


class TestBuildTd:
    def test_nodes_become_atoms(self, schema):
        td = build_td(schema, ["1", "2"], [("1", "2", BOTTOM_ROW)], name="t")
        assert len(td.antecedents) == 2
        assert td.name == "t"

    def test_edge_merges_variables(self, schema):
        td = build_td(schema, ["1", "2"], [("1", "2", BOTTOM_ROW)], name="t")
        column = schema.schema.position(BOTTOM_ROW)
        assert td.antecedents[0][column] == td.antecedents[1][column]

    def test_unconnected_cells_distinct(self, schema):
        td = build_td(schema, ["1", "2"], [], name="t")
        for column in range(schema.schema.arity):
            assert td.antecedents[0][column] != td.antecedents[1][column]

    def test_conclusion_unmerged_cells_existential(self, schema):
        td = build_td(schema, ["1"], [("1", "*", BOTTOM_ROW)], name="t")
        # Every column except E is existential on the conclusion.
        assert len(td.existential_variables()) == schema.schema.arity - 1

    def test_result_is_typed(self, schema):
        td = build_td(
            schema, ["1", "2"], [("1", "2", BOTTOM_ROW), ("1", "*", TOP_ROW)],
            name="t",
        )
        assert td.is_typed()

    def test_duplicate_nodes_rejected(self, schema):
        with pytest.raises(ReductionError):
            build_td(schema, ["1", "1"], [], name="t")

    def test_unknown_edge_node_rejected(self, schema):
        with pytest.raises(ReductionError):
            build_td(schema, ["1"], [("1", "9", BOTTOM_ROW)], name="t")


class TestEquationDependencies:
    def test_four_dependencies(self, schema, equation):
        four = equation_dependencies(schema, equation)
        assert len(four) == 4
        assert [td.name for td in four] == [
            "D1[A0.B=C]",
            "D2[A0.B=C]",
            "D3[A0.B=C]",
            "D4[A0.B=C]",
        ]

    def test_antecedent_counts(self, schema, equation):
        d1, d2, d3, d4 = equation_dependencies(schema, equation)
        assert len(d1.antecedents) == 5
        assert len(d2.antecedents) == 3
        assert len(d3.antecedents) == 3
        assert len(d4.antecedents) == 5

    def test_at_most_five_antecedents(self, schema, equation):
        """The paper's headline boundedness claim."""
        for td in equation_dependencies(schema, equation):
            assert len(td.antecedents) <= 5

    def test_all_typed_and_embedded(self, schema, equation):
        for td in equation_dependencies(schema, equation):
            assert td.is_typed()
            assert td.is_embedded()

    def test_non_short_equation_rejected(self, schema):
        with pytest.raises(ReductionError):
            equation_dependencies(schema, Equation.make(["A0"], ["0"]))

    def test_d1_conclusion_spans_outer_bases(self, schema, equation):
        d1 = equation_dependencies(schema, equation)[0]
        c_p = schema.schema.position(schema.primed("C"))
        c_pp = schema.schema.position(schema.double_primed("C"))
        # conclusion shares C' with node 1 and C'' with node 3.
        assert d1.conclusion[c_p] == d1.antecedents[0][c_p]
        assert d1.conclusion[c_pp] == d1.antecedents[2][c_pp]

    def test_d2_conclusion_has_existential_endpoint(self, schema, equation):
        d2 = equation_dependencies(schema, equation)[1]
        a_pp = schema.schema.position(schema.double_primed("A0"))
        assert d2.conclusion[a_pp] in d2.existential_variables()

    def test_d4_concludes_a_base_point(self, schema, equation):
        d4 = equation_dependencies(schema, equation)[3]
        e = schema.schema.position(BOTTOM_ROW)
        assert d4.conclusion[e] == d4.antecedents[0][e]

    def test_diagrams_renderable(self, schema, equation):
        for td in equation_dependencies(schema, equation):
            diagram = diagram_of(td)
            assert diagram.antecedent_count == len(td.antecedents)


class TestD0:
    def test_shape(self, schema):
        d0 = d0_dependency(schema, "A0", "0")
        assert len(d0.antecedents) == 3
        assert d0.name == "D0"
        assert d0.is_typed()
        assert d0.is_embedded()

    def test_antecedents_form_a0_triangle(self, schema):
        d0 = d0_dependency(schema, "A0", "0")
        a0_p = schema.schema.position(schema.primed("A0"))
        a0_pp = schema.schema.position(schema.double_primed("A0"))
        e = schema.schema.position(BOTTOM_ROW)
        base1, base2, apex = d0.antecedents
        assert base1[e] == base2[e]
        assert base1[a0_p] == apex[a0_p]
        assert apex[a0_pp] == base2[a0_pp]

    def test_conclusion_is_zero_apex(self, schema):
        d0 = d0_dependency(schema, "A0", "0")
        z_p = schema.schema.position(schema.primed("0"))
        z_pp = schema.schema.position(schema.double_primed("0"))
        e_p = schema.schema.position(TOP_ROW)
        base1, base2, apex = d0.antecedents
        assert d0.conclusion[z_p] == base1[z_p]
        assert d0.conclusion[z_pp] == base2[z_pp]
        assert d0.conclusion[e_p] == apex[e_p]

    def test_nontrivial(self, schema):
        assert not d0_dependency(schema, "A0", "0").is_trivial()

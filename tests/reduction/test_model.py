"""Unit tests for repro.reduction.model (direction B)."""

import pytest

from repro.errors import ReductionError
from repro.reduction.encode import encode
from repro.reduction.model import counterexample_database, verify_counterexample
from repro.reduction.schema import BOTTOM_ROW, TOP_ROW
from repro.semigroups.construct import cyclic_group, free_nilpotent
from repro.semigroups.search import CounterModel, find_counter_model
from repro.workloads.instances import negative_family, negative_instance


@pytest.fixture(scope="module")
def encoding():
    return encode(negative_instance())


@pytest.fixture(scope="module")
def counter_model(encoding):
    model = find_counter_model(encoding.presentation)
    assert model is not None
    return model


@pytest.fixture(scope="module")
def database(encoding, counter_model):
    return counterexample_database(encoding, counter_model)


class TestConstruction:
    def test_p_contains_identity_and_a0(self, database):
        identity = database.extended.size - 1
        a0 = database.counter_model.assignment["A0"]
        assert identity in database.p_elements
        assert a0 in database.p_elements

    def test_p_excludes_zero(self, database):
        zero = database.counter_model.assignment["0"]
        assert zero not in database.p_elements

    def test_q_triples_follow_multiplication(self, database):
        for a, letter, b in database.q_elements:
            element = database.counter_model.assignment[letter]
            assert database.extended.product(a, element) == b

    def test_zero_arrows_empty(self, database):
        """The paper: ->_0 is empty (0 is not in P)."""
        assert all(letter != "0" for __, letter, __b in database.q_elements)

    def test_one_row_per_element(self, database):
        assert len(database.instance) == database.universe_size

    def test_rows_typed(self, database):
        database.instance.validate()

    def test_p_rows_share_e(self, database):
        column = database.encoding.reduction_schema.schema.position(BOTTOM_ROW)
        values = {database.row_of[p][column] for p in database.p_elements}
        assert len(values) == 1

    def test_q_rows_share_e_prime(self, database):
        column = database.encoding.reduction_schema.schema.position(TOP_ROW)
        values = {database.row_of[q][column] for q in database.q_elements}
        assert len(values) <= 1

    def test_triple_agrees_with_endpoints(self, database):
        schema = database.encoding.reduction_schema
        for triple in database.q_elements:
            a, letter, b = triple
            p_col = schema.schema.position(schema.primed(letter))
            pp_col = schema.schema.position(schema.double_primed(letter))
            assert database.row_of[triple][p_col] == database.row_of[a][p_col]
            assert database.row_of[triple][pp_col] == database.row_of[b][pp_col]


class TestGuards:
    def test_semigroup_with_identity_rejected(self, encoding):
        bogus = CounterModel(cyclic_group(3), {"A0": 1, "0": 0})
        with pytest.raises(ReductionError):
            counterexample_database(encoding, bogus)

    def test_assignment_must_refute(self, encoding):
        nilpotent = free_nilpotent(3)
        bogus = CounterModel(nilpotent, {"A0": 2, "0": 2})
        with pytest.raises(ReductionError):
            counterexample_database(encoding, bogus)

    def test_missing_letter_rejected(self, encoding):
        nilpotent = free_nilpotent(3)
        bogus = CounterModel(nilpotent, {"A0": 0})
        with pytest.raises(ReductionError):
            counterexample_database(encoding, bogus)


class TestClassFacts:
    """The proof's Facts 1 and 2, machine-checked."""

    def test_facts_hold_on_canonical_database(self, database):
        from repro.reduction.model import check_class_facts

        check_class_facts(database)  # raises on violation

    def test_primed_classes_at_most_two(self, database):
        schema = database.encoding.reduction_schema
        for letter in database.encoding.presentation.alphabet:
            column = schema.schema.position(schema.primed(letter))
            sizes = {}
            for row in database.row_of.values():
                sizes[row[column]] = sizes.get(row[column], 0) + 1
            assert max(sizes.values()) <= 2

    def test_nontrivial_class_crosses_p_and_q(self, database):
        """Every 2-element ~A' class pairs a P element with a Q triple."""
        schema = database.encoding.reduction_schema
        p_set = set(database.p_elements)
        for letter in database.encoding.presentation.alphabet:
            column = schema.schema.position(schema.primed(letter))
            classes: dict = {}
            for element, row in database.row_of.items():
                classes.setdefault(row[column], []).append(element)
            for members in classes.values():
                if len(members) == 2:
                    assert sum(member in p_set for member in members) == 1

    def test_facts_checker_detects_breach(self, database):
        """Tampering with the rows trips the checker."""
        import dataclasses

        from repro.errors import VerificationError
        from repro.reduction.model import check_class_facts

        schema = database.encoding.reduction_schema
        column = schema.schema.position(schema.primed("A0"))
        # Give every element the same A0' class: cardinality blows up.
        shared = next(iter(database.row_of.values()))[column]
        tampered_rows = {
            element: row[:column] + (shared,) + row[column + 1 :]
            for element, row in database.row_of.items()
        }
        tampered = dataclasses.replace(database, row_of=tampered_rows)
        with pytest.raises(VerificationError):
            check_class_facts(tampered)


class TestVerification:
    def test_direction_b_confirmed(self, database):
        report = verify_counterexample(database)
        assert report.ok
        assert report.d_satisfied
        assert report.d0_violated
        assert report.violations == []

    def test_d0_witness_matches_paper(self, database):
        """(NOT D0): t1 = I, t2 = A0-bar, t3 = <I, A0, A0-bar>."""
        report = verify_counterexample(database)
        witness = report.d0_witness
        assert witness is not None
        schema = database.encoding.reduction_schema
        # The witness binds D0's three antecedent nodes; recover the rows
        # it matched and check the apex row is the <I, A0, A0> triple row.
        identity = database.extended.size - 1
        a0 = database.counter_model.assignment["A0"]
        triple_row = database.row_of[(identity, "A0", a0)]
        matched_rows = set()
        d0 = database.encoding.d0
        for atom in d0.antecedents:
            matched_rows.add(tuple(witness[variable] for variable in atom))
        assert triple_row in matched_rows

    def test_scaled_alphabet_still_confirms(self):
        presentation = negative_family(2)
        encoding = encode(presentation)
        model = find_counter_model(presentation)
        assert model is not None
        database = counterexample_database(encoding, model)
        report = verify_counterexample(database)
        assert report.ok

    def test_describe(self, database):
        report = verify_counterexample(database)
        assert "CONFIRMED" in report.describe()
        assert "|P|" in database.describe()

"""Unit tests for repro.reduction.encode."""

import pytest

from repro.errors import ReductionError
from repro.reduction.encode import encode
from repro.semigroups.presentation import Equation, Presentation
from repro.workloads.instances import negative_instance, positive_instance


class TestEncode:
    def test_dependency_count_is_four_per_equation(self, positive_encoding):
        equations = len(positive_encoding.presentation.equations)
        assert positive_encoding.dependency_count == 4 * equations

    def test_attribute_count_is_2n_plus_2(self, positive_encoding):
        letters = len(positive_encoding.presentation.alphabet)
        assert positive_encoding.attribute_count == 2 * letters + 2

    def test_by_equation_index_complete(self, positive_encoding):
        for equation in positive_encoding.presentation.equations:
            assert len(positive_encoding.by_equation[equation]) == 4

    def test_all_dependencies_share_schema(self, positive_encoding):
        schemas = {td.schema for td in positive_encoding.dependencies}
        schemas.add(positive_encoding.d0.schema)
        assert len(schemas) == 1

    def test_d0_present(self, negative_encoding):
        assert negative_encoding.d0.name == "D0"

    def test_describe_mentions_counts(self, positive_encoding):
        text = positive_encoding.describe()
        assert "attributes" in text
        assert "dependencies" in text

    def test_normalizes_by_default(self):
        presentation = Presentation.with_zero_equations(
            ["A0", "0"],
            [Equation.make(["A0", "A0", "A0"], ["0"])],
        )
        encoding = encode(presentation)
        assert encoding.presentation.is_short_form()

    def test_rejects_long_equations_without_normalize(self):
        presentation = Presentation.with_zero_equations(
            ["A0", "0"],
            [Equation.make(["A0", "A0", "A0"], ["0"])],
        )
        with pytest.raises(ReductionError):
            encode(presentation, normalize=False)

    def test_rejects_missing_zero_equations(self):
        presentation = Presentation(
            ["A0", "0"], [Equation.make(["A0", "A0"], ["0"])]
        )
        with pytest.raises(ReductionError):
            encode(presentation)

    def test_short_form_accepted_without_normalize(self):
        encoding = encode(negative_instance(), normalize=False)
        assert encoding.dependency_count == 12  # 3 zero equations x 4

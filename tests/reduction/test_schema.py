"""Unit tests for repro.reduction.schema."""

import pytest

from repro.errors import ReductionError
from repro.reduction.schema import BOTTOM_ROW, TOP_ROW, ReductionSchema
from repro.workloads.instances import negative_instance


class TestReductionSchema:
    def test_attribute_count_is_2n_plus_2(self):
        for letters in (("A0", "0"), ("A0", "X", "Y", "0")):
            schema = ReductionSchema(letters)
            assert schema.attribute_count == 2 * len(letters) + 2

    def test_row_attributes_first(self):
        schema = ReductionSchema(("A0", "0"))
        assert schema.schema.attributes[0] == BOTTOM_ROW
        assert schema.schema.attributes[1] == TOP_ROW

    def test_primed_attributes(self):
        schema = ReductionSchema(("A0", "0"))
        assert schema.primed("A0") == "A0'"
        assert schema.double_primed("A0") == "A0''"
        assert schema.primed("0") == "0'"

    def test_primed_attributes_in_schema(self):
        schema = ReductionSchema(("A0", "0"))
        assert "A0'" in schema.schema
        assert "A0''" in schema.schema

    def test_unknown_letter_rejected(self):
        schema = ReductionSchema(("A0", "0"))
        with pytest.raises(ReductionError):
            schema.primed("Z")

    def test_duplicate_letters_rejected(self):
        with pytest.raises(ReductionError):
            ReductionSchema(("A0", "A0"))

    def test_colliding_letter_rejected(self):
        with pytest.raises(ReductionError):
            ReductionSchema(("A0", "E", "0"))

    def test_for_presentation(self):
        schema = ReductionSchema.for_presentation(negative_instance())
        assert schema.alphabet == ("A0", "0")
        assert schema.attribute_count == 6

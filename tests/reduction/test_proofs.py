"""Unit tests for repro.reduction.proofs (direction A)."""

import pytest

from repro.chase.implication import conclusion_satisfied
from repro.chase.modelcheck import satisfies_all
from repro.errors import ReductionError
from repro.reduction.encode import encode
from repro.reduction.proofs import classify_replacement, prove_from_derivation
from repro.semigroups.rewriting import Derivation, word_problem
from repro.workloads.instances import positive_chain_family, positive_instance


@pytest.fixture(scope="module")
def encoding():
    return encode(positive_instance())


@pytest.fixture(scope="module")
def derivation(encoding):
    found = word_problem(encoding.presentation)
    assert found is not None
    return found


class TestClassifyReplacement:
    def test_contraction_identified(self, encoding):
        equation, position, kind = classify_replacement(
            encoding, ("A0", "A0"), ("0",)
        )
        assert kind == "contract"
        assert position == 0
        assert equation.lhs == ("A0", "A0")

    def test_expansion_identified(self, encoding):
        equation, position, kind = classify_replacement(
            encoding, ("A0",), ("A0", "A0")
        )
        assert kind == "expand"
        assert position == 0

    def test_positional_replacement(self, encoding):
        __, position, kind = classify_replacement(
            encoding, ("0", "A0", "A0"), ("0", "A0")
        )
        assert kind == "contract"
        assert position in (0, 1)  # 0.A0 = 0 at 0, or A0.A0 = A0 at 1

    def test_unexplainable_step_rejected(self, encoding):
        with pytest.raises(ReductionError):
            classify_replacement(encoding, ("A0",), ("0", "0"))


class TestProveFromDerivation:
    def test_proof_builds_and_verifies(self, encoding, derivation):
        proof = prove_from_derivation(encoding, derivation)
        proof.verify()  # raises on any unsoundness

    def test_conclusion_established(self, encoding, derivation):
        proof = prove_from_derivation(encoding, derivation)
        assert conclusion_satisfied(
            proof.final, encoding.d0, proof.frozen_assignment
        )

    def test_step_bound_three_per_replacement(self, encoding, derivation):
        proof = prove_from_derivation(encoding, derivation)
        assert proof.step_count <= 3 * derivation.length

    def test_wrong_source_rejected(self, encoding):
        bogus = Derivation((("0",),))
        with pytest.raises(ReductionError):
            prove_from_derivation(encoding, bogus)

    def test_wrong_target_rejected(self, encoding):
        bogus = Derivation((("A0",),))
        with pytest.raises(ReductionError):
            prove_from_derivation(encoding, bogus)

    def test_final_instance_contains_start(self, encoding, derivation):
        proof = prove_from_derivation(encoding, derivation)
        assert proof.start.rows <= proof.final.rows

    @pytest.mark.parametrize("chain", [1, 2, 3])
    def test_chain_family_proofs(self, chain):
        presentation = positive_chain_family(chain)
        encoding = encode(presentation)
        derivation = word_problem(presentation, max_length=chain + 4)
        assert derivation is not None
        proof = prove_from_derivation(encoding, derivation)
        proof.verify()

    def test_proof_steps_fire_encoded_dependencies_only(
        self, encoding, derivation
    ):
        proof = prove_from_derivation(encoding, derivation)
        allowed = set(encoding.dependencies)
        for step in proof.steps:
            assert step.dependency in allowed

    def test_proof_soundness_spot_check(self, encoding, derivation):
        """Each intermediate instance only contains chase-derivable rows:
        replaying with verification on is the actual check; here we also
        confirm the final instance is NOT a model of D (the proof stops
        as soon as D0's conclusion appears, no need to saturate)."""
        proof = prove_from_derivation(encoding, derivation)
        # The proof certifies implication, not saturation.
        assert proof.final.rows != proof.start.rows
        # satisfies_all may be False; assert it runs without error.
        satisfies_all(proof.final, encoding.dependencies)

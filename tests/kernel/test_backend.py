"""The join-backend selector: resolution, caching, override, fallback.

The walkers themselves are held native ≡ python by the parametrized
differential suites (``tests/chase/test_kernel_differential.py`` and
friends); this module tests the selection machinery — the process-wide
cached resolution, the ``REPRO_JOIN_BACKEND`` contract, the log-once
fallback warning, and direct walker agreement on a small instance so a
backend-dispatch bug fails here with a pinpoint message rather than
deep inside a differential seed.
"""

import logging
import os

import pytest

from repro.kernel import backend
from repro.kernel.backend import (
    join_backend_info,
    join_backend_override,
    native_available,
    resolve_join_backend,
    set_join_backend,
)
from repro.kernel.joins import (
    compile_steps,
    extend_matches,
    has_extension,
    retraction_walk,
    violation_walk,
)
from repro.relational.instance import Instance
from repro.relational.schema import Schema
from repro.relational.values import Const

needs_native = pytest.mark.skipif(
    not native_available(),
    reason="repro.kernel._native not built "
    "(python setup.py build_ext --inplace)",
)


@pytest.fixture
def restore_backend():
    """Put the process backend back exactly as it was."""
    saved = os.environ.get(backend.ENV_VAR)
    yield
    if saved is None:
        os.environ.pop(backend.ENV_VAR, None)
    else:
        os.environ[backend.ENV_VAR] = saved
    set_join_backend(None)


def test_resolution_is_cached(restore_backend):
    first = resolve_join_backend()
    # Mutating the environment without reset must not change the answer:
    # resolution is once per process, not per call.
    os.environ[backend.ENV_VAR] = (
        "python" if first == "native" else "auto"
    )
    assert resolve_join_backend() == first


def test_python_forced(restore_backend):
    assert set_join_backend("python") == "python"
    assert backend.active_native() is None


def test_auto_prefers_native_when_available(restore_backend):
    resolved = set_join_backend("auto")
    assert resolved == ("native" if native_available() else "python")


def test_invalid_backend_rejected(restore_backend):
    with pytest.raises(ValueError, match="unknown join backend"):
        set_join_backend("rust")
    os.environ[backend.ENV_VAR] = "rust"
    backend._resolved = None
    with pytest.raises(ValueError, match="unknown join backend"):
        resolve_join_backend()


def test_override_restores(restore_backend):
    before = resolve_join_backend()
    with join_backend_override("python") as resolved:
        assert resolved == "python"
        assert resolve_join_backend() == "python"
    assert resolve_join_backend() == before


def test_info_shape(restore_backend):
    with join_backend_override("python"):
        info = join_backend_info()
    assert info["join_backend"] == "python"
    assert info["requested"] == "python"
    assert isinstance(info["native_available"], bool)


def test_native_unavailable_warns_once(restore_backend, caplog, monkeypatch):
    """``native`` without the extension: python fallback, one warning."""
    monkeypatch.setattr(backend, "_import_native", lambda: None)
    backend._warned_unavailable = False
    with caplog.at_level(logging.WARNING, logger="repro.kernel.backend"):
        assert set_join_backend("native") == "python"
        # A second resolution (e.g. a worker re-resolving) stays quiet.
        assert set_join_backend("native") == "python"
    warnings = [
        r for r in caplog.records if "falling back" in r.getMessage()
    ]
    assert len(warnings) == 1
    backend._warned_unavailable = False


@pytest.fixture
def triangle_state():
    schema = Schema(["X", "Y", "Z"])
    instance = Instance(schema)
    for row in [("a", "b", "a"), ("b", "c", "b"), ("a", "c", "a"), ("c", "c", "c")]:
        instance.add(tuple(Const(x) for x in row))
    return instance.kernel_view()


def _walk_results(state):
    """Every walker's observable output on a fixed 2-atom join."""
    # R(x, y, _), R(y, z, _): compose two hops.
    steps = compile_steps([(0, 1, 2), (1, 3, 4)], set())
    seen, out = set(), []
    extend_matches(state, steps, 0, [0] * 5, 5, seen, out)
    regs = [0] * 5
    found = has_extension(state, steps, 0, regs)
    witness = tuple(regs) if found else None
    # Antecedent R(x, y, _) must extend to R(y, x, _): violated here.
    v_steps = compile_steps([(0, 1, 2)], set())
    activity = compile_steps([(1, 0, 3)], {0, 1})
    v_regs = [0] * 4
    violated = violation_walk(state, v_steps, 0, v_regs, activity)
    v_witness = tuple(v_regs[:2]) if violated else None
    r_regs = [0] * 5
    retracts = retraction_walk(state, steps, 0, r_regs, set())
    return sorted(out), found, witness, violated, v_witness, retracts


@needs_native
def test_walkers_agree_across_backends(triangle_state, restore_backend):
    with join_backend_override("python"):
        expected = _walk_results(triangle_state)
    with join_backend_override("native"):
        actual = _walk_results(triangle_state)
    assert actual == expected


@needs_native
def test_native_state_construction_matches(restore_backend):
    """fill_state (C) and the python _admit loop build identical views."""
    schema = Schema(["X", "Y"])
    rows = [("a", "b"), ("b", "c"), ("c", "a"), ("a", "a")]

    def build(backend_name):
        instance = Instance(schema)
        for row in rows:
            instance.add(tuple(Const(x) for x in row))
        with join_backend_override(backend_name):
            state = instance.kernel_view()
        decode = state.values
        return (
            {tuple(decode[v].name for v in irow) for irow in state.irows},
            {
                (column, decode[vid].name): {
                    tuple(decode[v].name for v in irow) for irow in bucket
                }
                for (column, vid), bucket in state.index.items()
            },
            {state._pos[irow] for irow in state.rows_list},
        )

    assert build("native") == build("python")


@needs_native
def test_outcome_provenance_reports_backend(restore_backend):
    from repro.chase.implication import implies
    from repro.dependencies.parser import parse_td

    schema = Schema(["A", "B", "C"])
    premise = parse_td("R(x, y, z) & R(y, x, z) -> R(x, x, z)", schema)
    target = parse_td("R(a, b, c) & R(b, a, c) -> R(a, a, c)", schema)
    for backend_name in ("python", "native"):
        with join_backend_override(backend_name):
            outcome = implies([premise], target)
        assert outcome.proved
        assert outcome.join_backend == backend_name

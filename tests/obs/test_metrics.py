"""Tests for the metrics registry: families, snapshots, exposition."""

import json
import threading

import pytest

from repro.io.json_codec import (
    CodecError,
    metrics_snapshot_from_json,
    metrics_snapshot_to_json,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    MetricsSnapshot,
    SIZE_BUCKETS,
    Stopwatch,
    log_buckets,
    stage_timer,
)


class TestBuckets:
    def test_log_buckets_ladder(self):
        assert log_buckets(0.001, 1.0) == (
            0.001,
            0.0025,
            0.005,
            0.01,
            0.025,
            0.05,
            0.1,
            0.25,
            0.5,
            1.0,
        )

    def test_default_latency_buckets_span_100us_to_100s(self):
        assert LATENCY_BUCKETS[0] == pytest.approx(0.0001)
        assert LATENCY_BUCKETS[-1] == pytest.approx(100.0)

    def test_log_buckets_rejects_bad_range(self):
        with pytest.raises(ValueError):
            log_buckets(0.0, 1.0)
        with pytest.raises(ValueError):
            log_buckets(1.0, 1.0)


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_negative_inc_rejected(self):
        counter = MetricsRegistry().counter("events_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labelled_children_are_independent(self):
        counter = MetricsRegistry().counter("hits_total", labels=("kind",))
        counter.labels(kind="a").inc(3)
        counter.labels(kind="b").inc(5)
        assert counter.labels(kind="a").value == 3
        assert counter.labels(kind="b").value == 5

    def test_wrong_label_names_rejected(self):
        counter = MetricsRegistry().counter("hits_total", labels=("kind",))
        with pytest.raises(ValueError):
            counter.labels(flavour="a")

    def test_function_backed_counter_reads_at_snapshot(self):
        registry = MetricsRegistry()
        box = {"n": 7}
        registry.counter("box_total", fn=lambda: box["n"])
        assert registry.snapshot().sample("box_total").value == 7
        box["n"] = 11
        assert registry.snapshot().sample("box_total").value == 11


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12


class TestRegistry:
    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("a_total", "help")
        again = registry.counter("a_total", "help")
        assert first is again

    def test_shape_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a_total")
        with pytest.raises(ValueError):
            registry.gauge("a_total")
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_bad_metric_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("1bad")
        with pytest.raises(ValueError):
            registry.counter("no spaces")


class TestHistogramBuckets:
    """Bucket boundary placement: Prometheus ``le`` is inclusive."""

    def test_value_equal_to_bound_lands_in_that_bucket(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 5.0))
        histogram.observe(1.0)  # == first bound -> first bucket
        histogram.observe(1.5)  # -> second bucket
        histogram.observe(2.0)  # == second bound -> second bucket
        histogram.observe(9.0)  # above all bounds -> +Inf slot
        child = histogram.labels()
        assert child.bucket_counts == [1, 2, 0, 1]
        assert child.count == 4
        assert child.total == pytest.approx(13.5)

    def test_exposition_renders_cumulative_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", "help", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 99.0):
            histogram.observe(value)
        text = registry.render_prometheus()
        assert 'h_bucket{le="1"} 1' in text
        assert 'h_bucket{le="2"} 2' in text
        assert 'h_bucket{le="+Inf"} 3' in text
        assert "h_count 3" in text
        assert "h_sum 101" in text

    def test_size_buckets_are_powers_of_two(self):
        assert SIZE_BUCKETS == (1, 2, 4, 8, 16, 32, 64, 128, 256)


class TestSnapshotMerge:
    def _snap(self, counter_value, observations):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(counter_value)
        histogram = registry.histogram("h", buckets=(1.0, 10.0))
        for value in observations:
            histogram.observe(value)
        return registry.snapshot()

    def test_counters_and_histograms_add(self):
        merged = self._snap(3, [0.5]).merge(self._snap(4, [5.0, 50.0]))
        assert merged.sample("c_total").value == 7
        sample = merged.sample("h")
        assert sample.count == 3
        assert sample.bucket_counts == (1, 1, 1)
        assert sample.value == pytest.approx(55.5)

    def test_merge_is_associative(self):
        a = self._snap(1, [0.5])
        b = self._snap(2, [5.0])
        c = self._snap(4, [50.0])
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.sample("c_total").value == right.sample("c_total").value == 7
        assert (
            left.sample("h").bucket_counts
            == right.sample("h").bucket_counts
            == (1, 1, 1)
        )

    def test_gauges_are_right_biased(self):
        first = MetricsRegistry()
        first.gauge("g").set(1)
        second = MetricsRegistry()
        second.gauge("g").set(9)
        assert first.snapshot().merge(second.snapshot()).sample("g").value == 9

    def test_mismatched_shapes_refuse_to_merge(self):
        first = MetricsRegistry()
        first.counter("x")
        second = MetricsRegistry()
        second.gauge("x")
        with pytest.raises(ValueError):
            first.snapshot().merge(second.snapshot())

    def test_merge_snapshot_folds_into_registry(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(1)
        registry.merge_snapshot(self._snap(5, [0.5]))
        assert registry.counter("c_total").value == 6


class TestThreadSafety:
    def test_hammered_counter_and_histogram_lose_nothing(self):
        registry = MetricsRegistry()
        counter = registry.counter("n_total")
        histogram = registry.histogram("h", buckets=(0.5,))
        rounds, workers = 2_000, 8

        def hammer():
            for _ in range(rounds):
                counter.inc()
                histogram.observe(0.25)

        threads = [threading.Thread(target=hammer) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == rounds * workers
        child = histogram.labels()
        assert child.count == rounds * workers
        assert child.bucket_counts[0] == rounds * workers

    def test_concurrent_label_creation_is_single_instanced(self):
        counter = MetricsRegistry().counter("n_total", labels=("k",))
        seen = []

        def create(tag):
            seen.append(counter.labels(k="shared"))

        threads = [threading.Thread(target=create, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(child is seen[0] for child in seen)


class TestSnapshotCodec:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "a counter").inc(3)
        registry.gauge("g", "a gauge").set(2.5)
        histogram = registry.histogram(
            "h", "a histogram", labels=("stage",), buckets=(1.0, 10.0)
        )
        histogram.labels(stage="x").observe(0.5)
        histogram.labels(stage="x").observe(99.0)
        return registry

    def test_round_trip_through_json_codec(self):
        snapshot = self._registry().snapshot()
        wire = json.dumps(metrics_snapshot_to_json(snapshot))
        decoded = metrics_snapshot_from_json(json.loads(wire))
        assert decoded == snapshot

    def test_junk_raises_codec_error(self):
        with pytest.raises(CodecError):
            metrics_snapshot_from_json({"nope": 1})
        with pytest.raises(CodecError):
            metrics_snapshot_from_json([1, 2, 3])
        with pytest.raises(CodecError):
            metrics_snapshot_from_json(
                {"families": [{"name": "x", "samples": [{"value": "junk"}]}]}
            )


class TestPrometheusExposition:
    def test_golden_exposition(self):
        """The full text format, pinned: HELP/TYPE lines, label escaping,
        cumulative buckets, sum/count, gauges and counters."""
        registry = MetricsRegistry()
        registry.counter("repro_queries_total", "Queries submitted").inc(5)
        registry.gauge("repro_cache_entries", "Entries held").set(2)
        labelled = registry.counter(
            "repro_wins_total", "Race wins", labels=("variant",)
        )
        labelled.labels(variant="standard").inc(2)
        histogram = registry.histogram(
            "repro_seconds", "Latency", labels=("stage",), buckets=(0.1, 1.0)
        )
        histogram.labels(stage="chase").observe(0.05)
        histogram.labels(stage="chase").observe(0.5)
        histogram.labels(stage="chase").observe(30.0)
        assert registry.render_prometheus() == (
            "# HELP repro_queries_total Queries submitted\n"
            "# TYPE repro_queries_total counter\n"
            "repro_queries_total 5\n"
            "# HELP repro_cache_entries Entries held\n"
            "# TYPE repro_cache_entries gauge\n"
            "repro_cache_entries 2\n"
            "# HELP repro_wins_total Race wins\n"
            "# TYPE repro_wins_total counter\n"
            'repro_wins_total{variant="standard"} 2\n'
            "# HELP repro_seconds Latency\n"
            "# TYPE repro_seconds histogram\n"
            'repro_seconds_bucket{stage="chase",le="0.1"} 1\n'
            'repro_seconds_bucket{stage="chase",le="1"} 2\n'
            'repro_seconds_bucket{stage="chase",le="+Inf"} 3\n'
            'repro_seconds_sum{stage="chase"} 30.55\n'
            'repro_seconds_count{stage="chase"} 3\n'
        )

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", labels=("k",))
        counter.labels(k='quo"te\nline\\slash').inc()
        text = registry.render_prometheus()
        assert r'c_total{k="quo\"te\nline\\slash"} 1' in text


class TestTimingHelpers:
    def test_stopwatch_splits_are_laps(self):
        clock = iter([0.0, 1.0, 4.0, 4.5]).__next__
        watch = Stopwatch(clock=clock)
        assert watch.split() == pytest.approx(1.0)
        assert watch.split() == pytest.approx(3.0)
        assert watch.elapsed() == pytest.approx(4.5)

    def test_stage_timer_observes_on_exit(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "h", labels=("stage",), buckets=LATENCY_BUCKETS
        )
        with stage_timer(histogram, stage="x") as timer:
            pass
        assert timer.seconds >= 0.0
        assert registry.snapshot().sample("h", stage="x").count == 1

    def test_stage_timer_observes_even_on_exception(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=LATENCY_BUCKETS)
        with pytest.raises(RuntimeError):
            with stage_timer(histogram):
                raise RuntimeError("boom")
        assert registry.snapshot().sample("h").count == 1

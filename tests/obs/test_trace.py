"""Tests for run tracing: spans, trace records, the bounded buffer."""

import json
import threading

import pytest

from repro.obs.trace import RunTrace, Span, TraceBuffer, new_trace_id


class TestTraceIds:
    def test_ids_are_16_hex_and_distinct(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        for trace_id in ids:
            assert len(trace_id) == 16
            int(trace_id, 16)


class TestSpan:
    def test_round_trip(self):
        span = Span(name="chase", seconds=0.25, attrs={"variant": "standard"})
        wire = json.dumps(span.to_json())
        assert Span.from_json(json.loads(wire)) == span

    def test_attrs_omitted_when_empty(self):
        assert Span(name="record", seconds=0.0).to_json() == {
            "name": "record",
            "seconds": 0.0,
        }

    def test_junk_raises(self):
        with pytest.raises(ValueError):
            Span.from_json("not a span")
        with pytest.raises(ValueError):
            Span.from_json({"seconds": 1.0})


class TestRunTrace:
    def _trace(self):
        return RunTrace(
            trace_id="abc123abc123abc1",
            started_at=1000.0,
            wall_seconds=0.5,
            spans=[Span("cache_lookup", 0.01), Span("dispatch", 0.4)],
            queries=[{"index": 0, "status": "proved", "source": "chase"}],
            batch={"queries": 1, "cache_hits": 0},
        )

    def test_round_trip(self):
        trace = self._trace()
        wire = json.dumps(trace.to_json())
        assert RunTrace.from_json(json.loads(wire)) == trace

    def test_span_lookup_by_name(self):
        trace = self._trace()
        assert trace.span("dispatch").seconds == pytest.approx(0.4)
        assert trace.span("missing") is None

    def test_junk_raises(self):
        with pytest.raises(ValueError):
            RunTrace.from_json([])
        with pytest.raises(ValueError):
            RunTrace.from_json({"spans": []})


class TestTraceBuffer:
    def test_capacity_evicts_oldest(self):
        buffer = TraceBuffer(capacity=2)
        for tag in ("a", "b", "c"):
            buffer.put(RunTrace(trace_id=tag))
        assert len(buffer) == 2
        assert buffer.get("a") is None
        assert "a" not in buffer
        assert buffer.ids() == ["b", "c"]

    def test_reput_refreshes_recency(self):
        buffer = TraceBuffer(capacity=2)
        buffer.put(RunTrace(trace_id="a", wall_seconds=1.0))
        buffer.put(RunTrace(trace_id="b"))
        buffer.put(RunTrace(trace_id="a", wall_seconds=2.0))  # refresh "a"
        buffer.put(RunTrace(trace_id="c"))  # evicts "b", not "a"
        assert buffer.get("b") is None
        assert buffer.get("a").wall_seconds == pytest.approx(2.0)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            TraceBuffer(capacity=0)

    def test_concurrent_puts_respect_capacity(self):
        buffer = TraceBuffer(capacity=16)

        def fill(worker):
            for i in range(200):
                buffer.put(RunTrace(trace_id=f"{worker}-{i}"))

        threads = [threading.Thread(target=fill, args=(w,)) for w in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(buffer) == 16
        for trace_id in buffer.ids():
            assert buffer.get(trace_id) is not None

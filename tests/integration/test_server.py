"""Integration tests: the asyncio HTTP server + synchronous client.

Each test boots a real server on an ephemeral localhost port (via
:class:`ServerThread`) and talks to it over actual HTTP, so the wire
format, micro-batching loop and cross-client cache sharing are exercised
end to end.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.chase.budget import Budget
from repro.chase.engine import replay
from repro.chase.implication import InferenceStatus, conclusion_satisfied
from repro.dependencies.parser import parse_td
from repro.service import (
    InferenceService,
    ServerThread,
    ServiceClient,
    ServiceError,
)
from repro.workloads.generators import disguise


@pytest.fixture
def transitivity():
    return parse_td("R(x, y) & R(y, z) -> R(x, z)")


@pytest.fixture
def server():
    with ServerThread(InferenceService(), batch_window=0.05) as handle:
        yield handle


@pytest.fixture
def client(server):
    return ServiceClient(server.base_url)


class TestEndpoints:
    def test_healthz(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["uptime_seconds"] >= 0

    def test_implies_proved_with_replayable_certificate(self, client, transitivity):
        verdict = client.implies(
            [transitivity], parse_td("R(a, b) & R(b, c) & R(c, d) -> R(a, d)")
        )
        assert verdict.status is InferenceStatus.PROVED
        # The certificate crossed the wire intact: replay it client-side.
        start, frozen = verdict.outcome.target.freeze()
        final = replay(start, verdict.outcome.chase_result.steps, verify=True)
        assert conclusion_satisfied(final, verdict.outcome.target, frozen)

    def test_implies_without_certificates_is_slim(self, client, transitivity):
        verdict = client.implies(
            [transitivity],
            parse_td("R(a, b) & R(b, c) -> R(a, c)"),
            certificates=False,
        )
        assert verdict.status is InferenceStatus.PROVED
        assert verdict.outcome.chase_result is None

    def test_batch_statuses_and_request_budget(self, client, transitivity):
        batch = client.batch(
            [transitivity],
            [
                parse_td("R(a, b) & R(b, c) -> R(a, c)"),
                parse_td("R(a, b) -> R(b, a)"),
                # Starved by the request budget below: honest third value.
                parse_td("R(p, q) & R(q, r) & R(r, s) & R(s, t) -> R(p, t)"),
            ],
            budget=Budget(max_steps=2),
        )
        assert batch.statuses == [
            InferenceStatus.PROVED,
            InferenceStatus.DISPROVED,
            InferenceStatus.UNKNOWN,
        ]
        assert batch.stats["submitted"] == 3
        # The UNKNOWN ships slim even from a serial (workers=0) server:
        # a budget-exhausted chase result is debris, not a certificate.
        assert batch.items[2].outcome.chase_result is None
        # Decisive verdicts keep their certificates by default.
        assert batch.items[0].outcome.chase_result is not None

    def test_stats_endpoint_counts_traffic(self, client, transitivity):
        client.batch([transitivity], [parse_td("R(a, b) & R(b, c) -> R(a, c)")])
        stats = client.stats()
        assert stats["server"]["queries"] == 1
        assert stats["server"]["executed"] == 1
        assert stats["cache"]["size"] == 1
        assert stats["batching"]["max_batch"] >= 1

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceError, match="404"):
            client.request("GET", "/v1/nope")
        # Error responses still count as requests, so monitoring ratios
        # (http_errors / requests) stay well-defined.
        stats = client.stats()
        assert stats["server"]["http_errors"] >= 1
        assert stats["server"]["requests"] > stats["server"]["http_errors"]

    def test_client_budget_is_clamped_into_server_ceiling(self, transitivity):
        """An unlimited (or empty) request budget must not wedge the
        server: budgets only narrow the server's ceiling."""
        service = InferenceService()
        with ServerThread(
            service,
            batch_window=0.01,
            default_budget=Budget(max_steps=25, max_seconds=5.0),
        ) as handle:
            client = ServiceClient(handle.base_url)
            diverging = parse_td("R(x, y) -> R(y, x2)")
            target = parse_td("R(a, b) -> R(b, a)")
            # "budget": {} decodes to unlimited on every axis; clamped to
            # the 25-step ceiling this answers UNKNOWN promptly instead
            # of chasing the diverging premises forever.
            verdict = client.implies(
                [diverging], target, budget=Budget.unlimited()
            )
            assert verdict.status is InferenceStatus.UNKNOWN
            # The server stays responsive afterwards.
            assert client.health()["status"] == "ok"

    def test_malformed_verdict_payload_raises_service_error(self):
        from repro.service.client import RemoteVerdict

        with pytest.raises(ServiceError, match="malformed"):
            RemoteVerdict.from_payload({"no": "outcome"})
        with pytest.raises(ServiceError, match="malformed"):
            RemoteVerdict.from_payload({"outcome": {}, "status": "nonsense"})
        with pytest.raises(ServiceError, match="malformed"):
            RemoteVerdict.from_payload({"outcome": {}})  # no status at all

    def test_wrong_method_is_405(self, client):
        with pytest.raises(ServiceError, match="405"):
            client.request("GET", "/v1/implies")

    def test_malformed_body_is_400(self, client):
        with pytest.raises(ServiceError, match="400"):
            client.request("POST", "/v1/implies", {"dependencies": "not-a-list"})

    def test_missing_target_is_400(self, client):
        with pytest.raises(ServiceError, match="400"):
            client.request("POST", "/v1/implies", {"dependencies": []})

    def test_chunked_transfer_encoding_is_rejected_cleanly(self, server):
        import socket

        with socket.create_connection(
            (server.server.host, server.server.port), timeout=10
        ) as raw:
            raw.sendall(
                b"POST /v1/implies HTTP/1.1\r\n"
                b"Transfer-Encoding: chunked\r\n"
                b"\r\n"
            )
            answer = raw.recv(65536).decode("latin-1")
        assert "400" in answer.splitlines()[0]
        assert "Transfer-Encoding" in answer


class TestCrossClientSharing:
    def test_two_concurrent_clients_chase_once(self, server, transitivity):
        """Alpha-renamed duplicates from concurrent clients cost one chase.

        Whether the two requests coalesce into one micro-batch (dedup) or
        land in consecutive batches (cache hit), the server must execute
        exactly one chase for the five structurally identical queries per
        client — asserted through the /v1/stats counters.
        """
        base = parse_td("R(a, b) & R(b, c) & R(c, d) -> R(a, d)")
        barrier = threading.Barrier(2)

        def one_client(client_number: int):
            client = ServiceClient(server.base_url)
            targets = [
                disguise(base, seed=client_number * 100 + index, tag="c")
                for index in range(5)
            ]
            barrier.wait(timeout=30)
            return client.batch([transitivity], targets)

        with ThreadPoolExecutor(max_workers=2) as executor:
            reports = list(executor.map(one_client, [1, 2]))

        for report in reports:
            assert all(
                status is InferenceStatus.PROVED for status in report.statuses
            )
        stats = ServiceClient(server.base_url).stats()
        assert stats["server"]["queries"] == 10
        assert stats["server"]["executed"] == 1
        # Everything else was answered by dedup or the shared cache.
        assert (
            stats["server"]["deduplicated"] + stats["server"]["cache_hits"] == 9
        )

    def test_second_client_is_served_from_cache(self, server, transitivity):
        base = parse_td("R(a, b) & R(b, c) -> R(a, c)")
        first = ServiceClient(server.base_url)
        first.batch([transitivity], [disguise(base, seed=1)])
        second = ServiceClient(server.base_url)
        report = second.batch([transitivity], [disguise(base, seed=2)])
        assert report.items[0].from_cache
        stats = second.stats()
        assert stats["server"]["executed"] == 1
        assert stats["server"]["cache_hits"] == 1


class TestServerWithWorkers:
    def test_pooled_server_round_trip_and_pool_teardown(self, transitivity):
        service = InferenceService(workers=1)
        with ServerThread(service, batch_window=0.01) as handle:
            client = ServiceClient(handle.base_url)
            verdict = client.implies(
                [transitivity], parse_td("R(a, b) & R(b, c) -> R(a, c)")
            )
            assert verdict.status is InferenceStatus.PROVED
        # The harness owns the lifecycle: leaving the context must have
        # shut the service's forked worker pool down, not leaked it.
        assert service._worker_pool is None

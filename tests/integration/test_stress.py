"""Moderate-scale stress tests: the pipelines at larger-than-unit sizes."""

import pytest

from repro.chase.budget import Budget
from repro.chase.engine import ChaseVariant, chase
from repro.chase.implication import InferenceStatus, implies
from repro.chase.result import ChaseStatus
from repro.dependencies.classify import summarize
from repro.reduction.encode import encode
from repro.reduction.proofs import prove_from_derivation
from repro.reduction.theorem import prove_direction_b
from repro.relational.instance import Instance
from repro.relational.schema import Schema
from repro.relational.values import Const
from repro.semigroups.rewriting import word_problem
from repro.workloads.generators import transitivity_family
from repro.workloads.instances import negative_family, positive_chain_family


class TestLargePositiveChain:
    def test_chain_six_guided_proof(self):
        """A 6-link chain: 14-step derivation, ~28 chase steps, verified."""
        presentation = positive_chain_family(6)
        encoding = encode(presentation)
        derivation = word_problem(presentation, max_length=10)
        assert derivation is not None
        proof = prove_from_derivation(encoding, derivation)
        proof.verify()
        assert proof.step_count <= 3 * derivation.length

    def test_chain_encoding_summary(self):
        encoding = encode(positive_chain_family(6))
        summary = summarize(encoding.dependencies + [encoding.d0])
        n = len(encoding.presentation.alphabet)
        assert summary.attribute_count == 2 * n + 2
        assert summary.max_antecedents == 5


class TestWideNegativeAlphabet:
    def test_six_letter_negative_family(self):
        """Direction (B) with a 6-letter alphabet (14 attributes)."""
        report = prove_direction_b(negative_family(4))
        assert report.report.ok
        assert report.encoding.attribute_count == 14


class TestChaseAtScale:
    def test_transitive_closure_of_grid(self):
        """Transitivity over a 24-node path: ~276 derived edges."""
        schema = Schema(["FROM", "TO"])
        nodes = [Const(f"n{i}") for i in range(24)]
        path = Instance(schema, [(nodes[i], nodes[i + 1]) for i in range(23)])
        from repro.dependencies.parser import parse_td

        transitivity = parse_td("R(x, y) & R(y, z) -> R(x, z)", schema)
        result = chase(
            path, [transitivity], budget=Budget.unlimited(), record_trace=False
        )
        assert result.status is ChaseStatus.TERMINATED
        assert len(result.instance) == 24 * 23 // 2  # all i < j pairs

    def test_semi_naive_matches_at_scale(self):
        schema = Schema(["FROM", "TO"])
        nodes = [Const(f"n{i}") for i in range(16)]
        path = Instance(schema, [(nodes[i], nodes[i + 1]) for i in range(15)])
        from repro.dependencies.parser import parse_td

        transitivity = parse_td("R(x, y) & R(y, z) -> R(x, z)", schema)
        standard = chase(
            path, [transitivity], budget=Budget.unlimited(), record_trace=False
        )
        semi = chase(
            path,
            [transitivity],
            variant=ChaseVariant.SEMI_NAIVE,
            budget=Budget.unlimited(),
            record_trace=False,
        )
        assert semi.instance.rows == standard.instance.rows

    def test_deep_implication(self):
        deps, target = transitivity_family(20)
        outcome = implies(
            deps, target, budget=Budget.unlimited(), record_trace=False
        )
        assert outcome.status is InferenceStatus.PROVED

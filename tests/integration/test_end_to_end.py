"""Integration tests: whole-pipeline behaviours across subsystems."""

import pytest

from repro.chase.budget import Budget
from repro.chase.engine import ChaseVariant, chase, replay
from repro.chase.implication import InferenceStatus, implies
from repro.chase.result import ChaseStatus
from repro.core.inference import Semantics, infer
from repro.dependencies.diagram import diagram_of
from repro.dependencies.parser import parse_td
from repro.reduction.model import counterexample_database, verify_counterexample
from repro.reduction.proofs import prove_from_derivation
from repro.reduction.theorem import (
    InstanceClass,
    classify_instance,
    prove_direction_a,
    prove_direction_b,
)
from repro.relational.core import core_of, homomorphically_equivalent
from repro.semigroups.rewriting import word_problem
from repro.semigroups.search import find_counter_model
from repro.workloads.garment import figure1_dependency, garment_database
from repro.workloads.instances import (
    negative_family,
    positive_chain_family,
)


class TestReductionPipeline:
    """The Main Theorem, as an executable statement."""

    def test_direction_a_guided_and_generic_agree(self, positive):
        report = prove_direction_a(positive, cross_check=True)
        assert report.generic_outcome.status is InferenceStatus.PROVED
        # The guided proof is a certificate for the same statement.
        report.proof.verify()

    def test_direction_b_database_refutes_chase_claim(self, negative_encoding):
        """The finite counterexample shows the chase can never derive
        D0's conclusion from these dependencies: if it could, the proof
        would transfer to every model, including this one."""
        report = prove_direction_b(negative_encoding.presentation.__class__
                                   .with_zero_equations(["A0", "0"]))
        assert report.report.ok

    def test_classification_matrix(self, positive, negative, gap):
        assert (
            classify_instance(positive).instance_class
            is InstanceClass.A0_COLLAPSES
        )
        assert (
            classify_instance(negative).instance_class
            is InstanceClass.FINITELY_REFUTABLE
        )
        assert classify_instance(gap).instance_class is InstanceClass.UNKNOWN

    @pytest.mark.parametrize("chain", [1, 2])
    def test_chain_family_end_to_end(self, chain):
        presentation = positive_chain_family(chain)
        report = prove_direction_a(presentation, max_word_length=chain + 4)
        report.proof.verify()

    @pytest.mark.parametrize("extra", [0, 1])
    def test_negative_family_end_to_end(self, extra):
        presentation = negative_family(extra)
        report = prove_direction_b(presentation)
        assert report.report.ok


class TestProofTransfer:
    """A guided chase proof replays on ANY database satisfying D.

    This is the semantic content of chase soundness: applying the proof's
    steps to a model of D only adds tuples that were already derivable,
    so D0's conclusion pattern must appear — which is why no model of D
    can violate D0 once a proof exists.
    """

    def test_steps_fire_only_encoded_dependencies(self, positive):
        derivation = word_problem(positive)
        from repro.reduction.encode import encode

        encoding = encode(positive)
        proof = prove_from_derivation(encoding, derivation)
        replayed = replay(proof.start, proof.steps)
        assert replayed.rows == proof.final.rows


class TestChaseVariantsAgree:
    def test_standard_and_oblivious_homomorphically_equivalent(self):
        schema_td = parse_td("R(x, y) & R(y, z) -> R(x, z)")
        start, __ = parse_td(
            "R(a, b) & R(b, c) & R(c, d) -> R(a, d)"
        ).freeze()
        standard = chase(start, [schema_td])
        oblivious = chase(
            start, [schema_td], variant=ChaseVariant.OBLIVIOUS,
            budget=Budget(max_steps=500),
        )
        assert standard.status is ChaseStatus.TERMINATED
        assert oblivious.status is ChaseStatus.TERMINATED
        assert homomorphically_equivalent(standard.instance, oblivious.instance)

    def test_cores_of_chase_results_coincide_for_full_tds(self):
        td = parse_td("R(x, y) & R(y, z) -> R(x, z)")
        start, __ = parse_td("R(a, b) & R(b, c) -> R(a, c)").freeze()
        standard = chase(start, [td]).instance
        oblivious = chase(
            start, [td], variant=ChaseVariant.OBLIVIOUS,
            budget=Budget(max_steps=500),
        ).instance
        # Full TDs invent no nulls: cores are literally equal row sets.
        assert core_of(standard).rows == core_of(oblivious).rows


class TestGarmentScenario:
    def test_repair_then_modelcheck_then_product(self):
        fig1 = figure1_dependency()
        repaired = chase(garment_database(), [fig1]).instance
        assert fig1.holds_in(repaired)
        from repro.relational.product import direct_product

        squared = direct_product(repaired, repaired)
        assert fig1.holds_in(squared)

    def test_diagram_round_trip_preserves_semantics(self):
        fig1 = figure1_dependency()
        rebuilt = diagram_of(fig1).to_dependency()
        # Logical equivalence via implication both ways.
        assert implies([fig1], rebuilt).status is InferenceStatus.PROVED
        assert implies([rebuilt], fig1).status is InferenceStatus.PROVED


class TestSemanticsFacade:
    def test_reduction_negative_instance_via_generic_facade(
        self, negative_encoding
    ):
        """infer() on the encoded negative instance: the chase diverges
        (embedded TDs), and the reduction's own counterexample database is
        the independent ground truth that DISPROVED would be correct.
        UNKNOWN is also acceptable from the bounded generic solver; what
        must never happen is PROVED."""
        report = infer(
            negative_encoding.dependencies,
            negative_encoding.d0,
            semantics=Semantics.FINITE,
            budget=Budget(max_steps=200, max_seconds=20),
            finite_search_restarts=5,
            finite_search_seconds=3.0,
        )
        assert report.status is not InferenceStatus.PROVED

"""Integration tests for the telemetry spine over real HTTP.

Boots a :class:`ServerThread`, drives a mixed batch (cache hit + dedup
pair + real chase) and asserts that ``/metrics``, ``/v1/trace/<id>``,
``?debug=1`` and the enriched ``/v1/stats`` all reflect what actually
happened — plus the facade-level verify path and the ``repro stats``
rendering helpers.
"""

import pytest

from repro.chase.implication import InferenceStatus
from repro.cli import _fmt_number, _histogram_quantile, _render_stats
from repro.dependencies.parser import parse_td
from repro.service import (
    InferenceService,
    ServerThread,
    ServiceClient,
    ServiceError,
)
from repro.workloads.generators import disguise


@pytest.fixture
def transitivity():
    return parse_td("R(x, y) & R(y, z) -> R(x, z)")


@pytest.fixture
def service():
    return InferenceService()


@pytest.fixture
def server(service):
    with ServerThread(service, batch_window=0.05) as handle:
        yield handle


@pytest.fixture
def client(server):
    return ServiceClient(server.base_url)


def parse_exposition(text: str) -> dict[str, float]:
    """Prometheus text format -> {series: value}; raises on bad lines."""
    samples: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        series, _, value = line.rpartition(" ")
        assert series, f"unparsable exposition line {line!r}"
        samples[series] = float(value)
    return samples


class TestMetricsEndpoint:
    def test_mixed_batch_is_fully_accounted_for(
        self, client, service, transitivity
    ):
        """Cache hit + dedup pair + fresh chase, checked series by series."""
        base = parse_td("R(a, b) & R(b, c) -> R(a, c)")
        # Warm the cache with the base query.
        client.batch([transitivity], [base])
        # Mixed follow-up: the warm query (cache hit), two alpha-renamed
        # copies of a new query (dedup pair) and the pair's first member
        # is the batch's one real chase.
        longer = parse_td("R(a, b) & R(b, c) & R(c, d) -> R(a, d)")
        report = client.batch(
            [transitivity],
            [base, disguise(longer, seed=1), disguise(longer, seed=2)],
        )
        assert all(
            status is InferenceStatus.PROVED for status in report.statuses
        )
        assert report.stats["from_cache"] == 1
        assert report.stats["deduplicated"] == 1

        samples = parse_exposition(client.metrics_text())
        assert samples["repro_queries_total"] == 4
        assert samples["repro_batches_total"] == 2
        assert samples["repro_cache_hits_total"] == 1
        assert samples["repro_dedup_total"] == 1
        assert samples["repro_executed_total"] == 2
        assert samples["repro_cache_lookup_misses_total"] == 3
        assert samples["repro_cache_lookup_hits_total"] == 1
        assert samples["repro_cache_entries"] == 2
        # Every pipeline stage produced latency samples with sane sums.
        for stage, count in [
            ("canonicalize", 4),
            ("cache_lookup", 4),
            ("chase", 2),
            ("record", 2),
        ]:
            series = f'repro_stage_seconds_count{{stage="{stage}"}}'
            assert samples[series] == count, series
            total = samples[f'repro_stage_seconds_sum{{stage="{stage}"}}']
            assert 0 <= total < 60
        # Per-chase observations carry variant and verdict labels.
        proved = [
            key
            for key in samples
            if key.startswith("repro_chase_run_seconds_count")
            and 'verdict="proved"' in key
        ]
        assert proved and sum(samples[key] for key in proved) == 2
        assert samples["repro_chase_steps_total"] >= 2
        # The HTTP layer accounts for itself too.
        assert samples['repro_http_requests_total{route="/v1/batch"}'] == 2
        assert samples['repro_http_requests_total{route="/metrics"}'] == 1
        assert samples["repro_uptime_seconds"] > 0

    def test_exposition_is_well_formed(self, client, transitivity):
        client.implies(
            [transitivity], parse_td("R(a, b) & R(b, c) -> R(a, c)")
        )
        text = client.metrics_text()
        # Histogram invariant: +Inf bucket == count for every series.
        samples = parse_exposition(text)
        inf_buckets = {
            key: value
            for key, value in samples.items()
            if 'le="+Inf"' in key
        }
        assert inf_buckets
        for key, value in inf_buckets.items():
            count_key = (
                key.replace("_bucket{", "_count{")
                .replace(',le="+Inf"', "")
                .replace('{le="+Inf"}', "")
            )
            assert samples[count_key] == value, key
        assert "# TYPE repro_stage_seconds histogram" in text

    def test_http_errors_are_counted(self, client, transitivity):
        with pytest.raises(ServiceError, match="404"):
            client.request("GET", "/v1/nope")
        samples = parse_exposition(client.metrics_text())
        assert samples["repro_http_errors_total"] >= 1
        # Unknown paths collapse into a bounded "other" route label —
        # client-chosen paths must never mint new label values.
        assert samples['repro_http_requests_total{route="other"}'] == 1
        assert not any("/v1/nope" in key for key in samples)


class TestTraceEndpoint:
    def test_batch_trace_shows_stage_timeline_and_provenance(
        self, client, transitivity
    ):
        base = parse_td("R(a, b) & R(b, c) -> R(a, c)")
        client.batch([transitivity], [base])  # warm
        longer = parse_td("R(a, b) & R(b, c) & R(c, d) -> R(a, d)")
        report = client.batch(
            [transitivity],
            [base, disguise(longer, seed=1), disguise(longer, seed=2)],
        )
        assert report.trace_id
        trace = client.trace(report.trace_id)
        assert trace["trace_id"] == report.trace_id
        assert trace["wall_seconds"] > 0
        span_names = [span["name"] for span in trace["spans"]]
        assert span_names == [
            "canonicalize",
            "cache_lookup",
            "dedup",
            "dispatch",
            "record",
        ]
        by_name = {span["name"]: span for span in trace["spans"]}
        assert by_name["cache_lookup"]["attrs"] == {"lookups": 3, "hits": 1}
        assert by_name["dedup"]["attrs"] == {"groups": 1, "folded": 1}
        assert by_name["dispatch"]["attrs"]["executed"] == 1
        sources = [row["source"] for row in trace["queries"]]
        assert sources == ["cache", "chase", "dedup"]
        # Chase provenance rides on chased *and* deduplicated rows.
        assert trace["queries"][1]["chase"]["steps"] >= 1
        assert trace["queries"][2]["chase"] == trace["queries"][1]["chase"]
        assert trace["batch"]["submitted"] == 3

    def test_client_supplied_trace_id_partitions_queries(
        self, client, transitivity
    ):
        verdict = client.implies(
            [transitivity],
            parse_td("R(a, b) & R(b, c) -> R(a, c)"),
            trace_id="my-request-001",
        )
        assert verdict.trace_id == "my-request-001"
        trace = client.trace("my-request-001")
        assert len(trace["queries"]) == 1
        assert trace["queries"][0]["status"] == "proved"

    def test_debug_flag_inlines_the_trace(self, client, transitivity):
        verdict = client.implies(
            [transitivity],
            parse_td("R(a, b) & R(b, c) -> R(a, c)"),
            debug=True,
        )
        assert verdict.trace is not None
        assert verdict.trace["trace_id"] == verdict.trace_id
        assert any(
            span["name"] == "dispatch" for span in verdict.trace["spans"]
        )
        # Without the flag the response stays slim.
        again = client.implies(
            [transitivity], parse_td("R(a, b) & R(b, c) -> R(a, c)")
        )
        assert again.trace is None
        assert again.trace_id  # ...but still addressable after the fact.

    def test_unknown_trace_is_404(self, client):
        with pytest.raises(ServiceError, match="404"):
            client.trace("feedfacefeedface")

    def test_oversized_trace_id_is_400(self, client, transitivity):
        with pytest.raises(ServiceError, match="400"):
            client.implies(
                [transitivity],
                parse_td("R(a, b) & R(b, c) -> R(a, c)"),
                trace_id="x" * 65,
            )


class TestStatsEnrichment:
    def test_stats_carry_snapshot_and_seconds_split(
        self, client, transitivity
    ):
        client.batch(
            [transitivity], [parse_td("R(a, b) & R(b, c) -> R(a, c)")]
        )
        stats = client.stats()
        server_stats = stats["server"]
        # batch_seconds is whole-run wall, chase_seconds only the time
        # spent inside dispatched chases — the split the old conflated
        # counter hid.
        assert server_stats["batch_seconds"] > 0
        assert 0 < server_stats["chase_seconds"] <= server_stats["batch_seconds"]
        families = {
            family["name"] for family in stats["metrics"]["families"]
        }
        assert "repro_stage_seconds" in families
        assert "repro_queries_total" in families


class TestProofVerification:
    def test_verify_proofs_counts_and_times_replays(self, transitivity):
        service = InferenceService(verify_proofs=True)
        service.submit(
            (transitivity,), parse_td("R(a, b) & R(b, c) -> R(a, c)")
        )
        service.submit((transitivity,), parse_td("R(a, b) -> R(b, a)"))
        report = service.run()
        assert report.stats.executed == 2
        snapshot = service.metrics.snapshot()
        # Only the PROVED outcome has a trace to replay.
        assert snapshot.sample("repro_proof_verifications_total").value == 1
        assert snapshot.sample("repro_stage_seconds", stage="verify").count == 1
        trace = service.traces.get(report.trace_id)
        assert trace.span("verify").attrs == {"proofs_verified": 1}


class TestStatsRendering:
    """Unit coverage for the ``repro stats`` helpers."""

    def test_fmt_number(self):
        assert _fmt_number(3) == "3"
        assert _fmt_number(3.0) == "3"
        assert _fmt_number(0.000123456) == "0.000123"
        assert _fmt_number(12.3456) == "12.346"
        assert _fmt_number("text") == "text"

    def test_histogram_quantile_bucket_resolution(self):
        bounds = [0.1, 1.0, 10.0]
        counts = [5, 4, 1, 0]  # non-cumulative, +Inf slot last
        assert _histogram_quantile(bounds, counts, 0.5) == "0.1"
        assert _histogram_quantile(bounds, counts, 0.9) == "1"
        assert _histogram_quantile(bounds, counts, 0.99) == "10"
        assert _histogram_quantile(bounds, [0, 0, 0, 0], 0.5) == "-"
        assert _histogram_quantile(bounds, [0, 0, 0, 3], 0.5) == ">10"

    def test_render_stats_full_payload(self, client, transitivity):
        client.batch(
            [transitivity], [parse_td("R(a, b) & R(b, c) -> R(a, c)")]
        )
        rendered = _render_stats(client.stats())
        assert "server:" in rendered
        assert "counters & gauges:" in rendered
        assert "histograms (bucket-resolution quantiles)" in rendered
        assert 'repro_stage_seconds{stage="chase"}' in rendered
        assert "repro_queries_total" in rendered

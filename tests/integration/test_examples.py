"""The shipped examples run cleanly (smoke-level integration)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

EXAMPLES = [
    "quickstart",
    "garment_catalog",
    "undecidability_reduction",
    "finite_vs_unrestricted",
    "diagrams_gallery",
    "certificates",
    "query_containment",
]


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        f"examples.{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    output = capsys.readouterr().out
    assert output.strip()  # every example narrates what it did


def test_quickstart_reports_all_three_statuses(capsys):
    module = _load("quickstart")
    module.main()
    output = capsys.readouterr().out
    assert "proved" in output
    assert "disproved" in output


def test_reduction_example_confirms_both_directions(capsys):
    module = _load("undecidability_reduction")
    module.main()
    output = capsys.readouterr().out
    assert "direction (A) CONFIRMED" in output
    assert "direction (B) CONFIRMED" in output
    assert "unknown" in output  # the gap instance

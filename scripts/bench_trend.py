#!/usr/bin/env python
"""Benchmark trend guard: fresh quick runs vs the committed baselines.

The quick benchmark steps (E13–E19) each write a gitignored
``BENCH_<name>.quick.json`` next to the committed full-size baseline
``BENCH_<name>.json``. This script compares every headline speedup
ratio (the ``speedup_*`` keys) between the two and exits non-zero when
a fresh ratio regresses beyond tolerance — catching "the compiled path
quietly got slower" before it lands, without re-running the multi-minute
full benchmarks in CI.

Quick runs use smaller workloads than the committed baselines and CI
machines are noisy, so the guard is deliberately loose; what it must
catch is a *collapse* (a compiled path falling back to legacy speed),
not a few-percent wobble:

* every fresh ratio must be at least ``--tolerance`` (default 0.5)
  times its committed baseline, and
* every fresh ratio must stay at or above ``--floor`` (default 1.0):
  the compiled path must never be *slower* than what it is measured
  against, whatever the baseline said.

Exit codes: 0 all ratios healthy; 1 at least one regression; 2 no quick
result files were found (almost always a CI wiring bug — the quick
benchmark steps did not run or wrote somewhere else).

Run from the repository root, after the quick benchmark steps::

    python scripts/bench_trend.py
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: The benchmark families guarded, by baseline stem.
BENCHMARKS = (
    "BENCH_chase_kernel",
    "BENCH_modelcheck",
    "BENCH_core",
    "BENCH_maintain",
    "BENCH_resume",
    "BENCH_analysis",
    "BENCH_joins",
)


def headline_ratios(payload: dict) -> dict[str, float]:
    """The ``speedup_*`` keys of one benchmark JSON, as floats."""
    return {
        key: float(value)
        for key, value in payload.items()
        if key.startswith("speedup_") and isinstance(value, (int, float))
    }


def compare(
    name: str,
    baseline: dict,
    quick: dict,
    tolerance: float,
    floor: float,
) -> list[str]:
    """Regression messages for one benchmark pair (empty = healthy)."""
    problems = []
    base_ratios = headline_ratios(baseline)
    quick_ratios = headline_ratios(quick)
    for key, base_value in sorted(base_ratios.items()):
        fresh = quick_ratios.get(key)
        if fresh is None:
            problems.append(
                f"{name}: baseline headline {key!r} missing from quick run"
            )
            continue
        minimum = max(base_value * tolerance, floor)
        status = "ok" if fresh >= minimum else "REGRESSED"
        print(
            f"  {name}.{key}: quick {fresh:.3f}x vs baseline "
            f"{base_value:.3f}x (min {minimum:.3f}x) {status}"
        )
        if fresh < minimum:
            problems.append(
                f"{name}: {key} regressed to {fresh:.3f}x "
                f"(baseline {base_value:.3f}x, minimum {minimum:.3f}x)"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="fresh ratio must be >= baseline * tolerance (default 0.5; "
        "quick workloads are smaller and noisier than the baselines)",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=1.0,
        help="fresh ratio must also be >= this absolute floor "
        "(default 1.0: compiled must never lose to legacy)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=REPO_ROOT,
        help="directory holding the BENCH_*.json files",
    )
    args = parser.parse_args(argv)

    compared = 0
    problems: list[str] = []
    for stem in BENCHMARKS:
        baseline_path = args.root / f"{stem}.json"
        quick_path = args.root / f"{stem}.quick.json"
        if not quick_path.exists():
            print(f"  {stem}: no quick result at {quick_path.name}, skipping")
            continue
        if not baseline_path.exists():
            problems.append(
                f"{stem}: quick result present but committed baseline "
                f"{baseline_path.name} is missing"
            )
            continue
        try:
            baseline = json.loads(baseline_path.read_text())
            quick = json.loads(quick_path.read_text())
        except (OSError, ValueError) as error:
            problems.append(f"{stem}: unreadable benchmark JSON: {error}")
            continue
        compared += 1
        problems.extend(
            compare(stem, baseline, quick, args.tolerance, args.floor)
        )

    if compared == 0:
        print(
            "bench_trend: no BENCH_*.quick.json files found — did the quick "
            "benchmark steps run?",
            file=sys.stderr,
        )
        return 2
    if problems:
        print("bench_trend: REGRESSIONS DETECTED", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print(f"bench_trend: {compared} benchmark(s) healthy")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""CI smoke test: boot ``repro serve`` on an ephemeral port, hit it, tear down.

Exercises the full deployment path — console entry point, ephemeral-port
binding, banner parsing, ``/healthz``, one ``/v1/batch`` over real HTTP —
and exits non-zero on any failure. Run from the repository root::

    PYTHONPATH=src python scripts/server_smoke.py
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.chase.budget import Budget  # noqa: E402
from repro.chase.implication import InferenceStatus  # noqa: E402
from repro.dependencies.parser import parse_td  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.service.testing import ServeSubprocess  # noqa: E402


def main() -> int:
    with ServeSubprocess("--window-ms", "5") as server:
        print(f"server banner: {server.banner.strip()}")
        client = ServiceClient(server.base_url, timeout=30.0)

        health = client.health()
        assert health["status"] == "ok", health
        print(f"healthz: {health}")

        transitivity = parse_td("R(x, y) & R(y, z) -> R(x, z)")
        report = client.batch(
            [transitivity],
            [
                parse_td("R(a, b) & R(b, c) -> R(a, c)"),
                parse_td("R(a, b) -> R(b, a)"),
            ],
            budget=Budget(max_steps=1_000),
        )
        statuses = [status.value for status in report.statuses]
        print(f"batch verdicts: {statuses}")
        assert report.statuses == [
            InferenceStatus.PROVED,
            InferenceStatus.DISPROVED,
        ], statuses

        stats = client.stats()
        assert stats["server"]["queries"] == 2, stats
        print(f"server stats: {stats['server']}")
        print("OK: serve boots, answers, and reports stats")
    return 0


if __name__ == "__main__":
    sys.exit(main())

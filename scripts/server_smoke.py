#!/usr/bin/env python
"""CI smoke test: boot ``repro serve`` on an ephemeral port, hit it, tear down.

Exercises the full deployment path — console entry point, ephemeral-port
binding, banner parsing, ``/healthz``, one ``/v1/batch`` over real HTTP,
the ``/metrics`` Prometheus exposition and a ``/v1/trace`` round trip —
and exits non-zero on any failure. Run from the repository root::

    PYTHONPATH=src python scripts/server_smoke.py
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.chase.budget import Budget  # noqa: E402
from repro.chase.implication import InferenceStatus  # noqa: E402
from repro.dependencies.parser import parse_td  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.service.testing import ServeSubprocess  # noqa: E402


def main() -> int:
    with ServeSubprocess("--window-ms", "5") as server:
        print(f"server banner: {server.banner.strip()}")
        client = ServiceClient(server.base_url, timeout=30.0)

        health = client.health()
        assert health["status"] == "ok", health
        print(f"healthz: {health}")

        transitivity = parse_td("R(x, y) & R(y, z) -> R(x, z)")
        report = client.batch(
            [transitivity],
            [
                parse_td("R(a, b) & R(b, c) -> R(a, c)"),
                parse_td("R(a, b) -> R(b, a)"),
            ],
            budget=Budget(max_steps=1_000),
        )
        statuses = [status.value for status in report.statuses]
        print(f"batch verdicts: {statuses}")
        assert report.statuses == [
            InferenceStatus.PROVED,
            InferenceStatus.DISPROVED,
        ], statuses

        stats = client.stats()
        assert stats["server"]["queries"] == 2, stats
        assert "metrics" in stats, "stats payload lost the registry snapshot"
        print(f"server stats: {stats['server']}")

        # /v1/trace: the batch's trace must be retrievable and show the
        # pipeline's stage timeline.
        assert report.trace_id, "batch response carried no trace_id"
        trace = client.trace(report.trace_id)
        span_names = [span["name"] for span in trace["spans"]]
        assert "cache_lookup" in span_names, span_names
        assert len(trace["queries"]) == 2, trace["queries"]
        print(f"trace {report.trace_id}: spans {span_names}")

        # /metrics: valid, non-empty Prometheus text exposition.
        text = client.metrics_text()
        assert text.strip(), "/metrics served an empty exposition"
        parsed = 0
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            series, _, value = line.rpartition(" ")
            assert series, f"unparsable exposition line {line!r}"
            float(value)  # every sample value must be a number
            parsed += 1
        assert parsed > 0, "exposition had no samples"
        for required in (
            "repro_stage_seconds_bucket",
            "repro_queries_total",
            "repro_http_requests_total",
            "repro_cache_lookup_misses_total",
        ):
            assert required in text, f"/metrics lost {required}"
        print(f"metrics: {parsed} samples parsed OK")
        print("OK: serve boots, answers, reports stats, traces and metrics")
    return 0


if __name__ == "__main__":
    sys.exit(main())

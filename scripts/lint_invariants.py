#!/usr/bin/env python
"""Repo-invariant lints the generic linters cannot express.

Two AST-level checks, run in CI after the unit suite:

1. **Metric table completeness** — every metric family registered in
   ``src/repro/service/instruments.py`` or ``src/repro/chase/maintain.py``
   (any ``registry.counter/gauge/histogram("name", ...)`` call with a
   literal name) must have a row in README.md's metric table. The
   README promises the table and ``GET /metrics`` agree; this makes the
   promise mechanical.

2. **Instance encapsulation** — no module under ``src/repro`` outside
   an explicit allowlist may touch :class:`Instance`'s internal row
   storage (``._rows`` / ``._index``). The allowlist is the defining
   module plus ``kernel/state.py``, whose interned fast-path writer
   (``KernelState.add_interned``, the chase's fire path) is the one
   audited exception. (``kernel/joins.py`` held that writer before the
   kernel grew its native backend and the state moved to its own
   module; the walkers remaining in joins.py are read-only and earn no
   exemption.)

Exit codes: 0 clean, 1 violations (printed one per line), 2 a lint
input file is missing. Run from anywhere::

    python scripts/lint_invariants.py
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_ROOT = REPO_ROOT / "src" / "repro"
README = REPO_ROOT / "README.md"

#: Modules whose registered metric families must appear in the README.
METRIC_MODULES = (
    SRC_ROOT / "service" / "instruments.py",
    SRC_ROOT / "chase" / "maintain.py",
)

#: The registry factory methods whose first literal argument is a
#: metric family name.
METRIC_FACTORIES = {"counter", "gauge", "histogram"}

#: Instance's private storage attributes.
PRIVATE_STORAGE = {"_rows", "_index"}

#: Modules allowed to touch Instance internals: the defining module and
#: the compiled kernel's audited interned-row fast path (KernelState
#: lives in kernel/state.py since the native-backend split).
STORAGE_ALLOWLIST = {
    SRC_ROOT / "relational" / "instance.py",
    SRC_ROOT / "kernel" / "state.py",
}


def registered_metric_names(path: Path) -> list[tuple[str, int]]:
    """(family name, line) for every literal metric registration."""
    tree = ast.parse(path.read_text(), filename=str(path))
    found = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (
            isinstance(func, ast.Attribute) and func.attr in METRIC_FACTORIES
        ):
            continue
        if not node.args:
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            found.append((first.value, node.lineno))
    return found


def readme_metric_table_names(readme_text: str) -> set[str]:
    """Metric names appearing as the first cell of a README table row."""
    names = set()
    for line in readme_text.splitlines():
        match = re.match(r"\|\s*`(repro_[a-z0-9_]+)`\s*\|", line)
        if match:
            names.add(match.group(1))
    return names


def check_metric_table() -> list[str]:
    problems = []
    documented = readme_metric_table_names(README.read_text())
    for module in METRIC_MODULES:
        for name, lineno in registered_metric_names(module):
            if name not in documented:
                problems.append(
                    f"{module.relative_to(REPO_ROOT)}:{lineno}: metric "
                    f"family {name!r} is registered but has no row in "
                    f"README.md's metric table"
                )
    return problems


def private_storage_accesses(path: Path) -> list[tuple[str, int]]:
    """(attribute, line) for every ``<expr>._rows`` / ``<expr>._index``.

    Accesses through ``self`` inside the allowlisted modules never get
    here; elsewhere *any* attribute access with these names is flagged —
    the names are unique to Instance's storage within this codebase.
    """
    tree = ast.parse(path.read_text(), filename=str(path))
    found = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and node.attr in PRIVATE_STORAGE:
            found.append((node.attr, node.lineno))
    return found


def check_instance_encapsulation() -> list[str]:
    problems = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        if path in STORAGE_ALLOWLIST:
            continue
        for attr, lineno in private_storage_accesses(path):
            problems.append(
                f"{path.relative_to(REPO_ROOT)}:{lineno}: direct access "
                f"to Instance internal storage {attr!r} — go through "
                f"Instance's public API (rows/add/match) or the audited "
                f"fast path in kernel/joins.py"
            )
    return problems


def main() -> int:
    missing = [
        path
        for path in (*METRIC_MODULES, README)
        if not path.exists()
    ]
    if missing:
        for path in missing:
            print(f"lint input missing: {path}", file=sys.stderr)
        return 2

    problems = check_metric_table() + check_instance_encapsulation()
    if problems:
        for problem in problems:
            print(problem)
        print(f"\n{len(problems)} invariant violation(s)", file=sys.stderr)
        return 1
    print("invariants ok: metric table complete, Instance storage sealed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Certificates: save a proof and a counterexample, reload, re-verify.

Because the inference problem is undecidable, trust shifts to
*certificates*: a PROVED answer carries a chase trace, a DISPROVED answer
a finite counterexample database. Both serialize to JSON, survive a round
trip through text, and re-verify from scratch in complete independence of
the solver run that produced them.

Run with:  python examples/certificates.py
"""

import json

from repro import infer, parse_td
from repro.chase.engine import replay
from repro.chase.implication import conclusion_satisfied
from repro.chase.modelcheck import satisfies_all
from repro.io.json_codec import (
    instance_from_json,
    instance_to_json,
    trace_from_json,
    trace_to_json,
)


def main() -> None:
    transitivity = parse_td("R(x, y) & R(y, z) -> R(x, z)")
    schema = transitivity.schema

    # ----------------------------------------------------------- a proof
    target = parse_td("R(x, y) & R(y, z) & R(z, w) -> R(x, w)", schema)
    report = infer([transitivity], target)
    assert report.proved
    trace = report.chase_outcome.chase_result.steps
    wire = json.dumps(trace_to_json(trace))
    print(f"proof certificate: {len(trace)} steps, {len(wire)} bytes of JSON")

    # An independent process would do exactly this:
    recovered_steps = trace_from_json(json.loads(wire))
    start, frozen = target.freeze()
    final = replay(start, recovered_steps)  # verifies every step
    assert conclusion_satisfied(final, target, frozen)
    print("reloaded proof replays and establishes the conclusion: True")
    print()

    # --------------------------------------------------- a counterexample
    symmetry = parse_td("R(x, y) -> R(y, x)", schema)
    report = infer([transitivity], symmetry)
    assert report.disproved
    wire = json.dumps(instance_to_json(report.finite_counterexample))
    print(f"counterexample certificate: {len(wire)} bytes of JSON")

    witness = instance_from_json(json.loads(wire))
    assert satisfies_all(witness, [transitivity])
    assert symmetry.find_violation(witness) is not None
    print("reloaded counterexample satisfies D and violates the target: True")
    print()
    print(witness.pretty())


if __name__ == "__main__":
    main()

"""Finite vs unrestricted semantics, operationally.

The paper treats both readings of "logical consequence" and cites Fagin
et al. (1981) for the fact that they genuinely differ for TDs. This
example shows the operational side of that distinction with the embedded
dependency "every node has a successor":

* the chase from a frozen edge diverges (it builds an infinite path), so
  chase alone cannot refute the candidate implications;
* bounded finite-model search *folds* the infinite path into a cycle,
  producing finite counterexamples that settle the questions under both
  semantics (a finite database is a database);
* a case where the implication actually holds is proved by the chase
  despite the diverging dependency being present.

Run with:  python examples/finite_vs_unrestricted.py
"""

from repro import Budget, ChaseStatus, chase, infer, parse_td
from repro.chase.finite_models import search_finite_counterexample


def main() -> None:
    successor = parse_td("R(x, y) -> R(y, s_star)")

    # 1. The chase from a single frozen edge diverges.
    frozen, __ = parse_td("R(a, b) -> R(b, c_star)").freeze()
    result = chase(frozen, [successor], budget=Budget(max_steps=40))
    print(
        f"chasing one edge with 'every node has a successor': "
        f"{result.status.value} after {result.step_count} steps, "
        f"{len(result.instance)} rows (an ever-growing path)"
    )
    assert result.status is ChaseStatus.BUDGET_EXHAUSTED
    print()

    # 2. Does it imply 'every node has a predecessor'? No -- but only a
    # finite model can say so, because the chase never terminates.
    predecessor = parse_td("R(x, y) -> R(p_star, x)")
    report = infer([successor], predecessor, budget=Budget.small())
    print(f"successor |= predecessor: {report.describe()}")
    print("the finite counterexample (a path folded into a lasso):")
    print(report.finite_counterexample.pretty())
    print()

    # 3. Same machinery, standalone: the searcher folds existential
    # witnesses back onto existing values.
    witness = search_finite_counterexample([successor], predecessor, seed=1)
    assert witness is not None
    print(f"standalone finite-model search also succeeds: {len(witness)} rows")
    print()

    # 4. And when the implication *does* hold, the goal-directed chase
    # proves it even though the dependency set can diverge.
    two_step = parse_td("R(x, y) -> R(y, t_star)")  # same as successor
    report = infer([successor], two_step, budget=Budget.small())
    print(f"successor |= successor (renamed): {report.describe()}")

    weaker = parse_td("R(x, y) & R(y, z) -> R(z, w_star)")
    report = infer([successor], weaker, budget=Budget.small())
    print(f"successor |= two-antecedent weakening: {report.describe()}")


if __name__ == "__main__":
    main()

"""Regenerate the paper's three figures as diagrams.

Figure 1 — the garment dependency; Figure 2 — a bridge (shown as its
instance plus invariants, since it is a database fragment rather than a
dependency); Figure 3 — the dependencies D1(r)..D4(r) for an equation
r: AB = C, plus D0. Each dependency diagram is printed in ASCII and the
Graphviz DOT source is emitted so `dot -Tpng` reproduces pictures in the
style of the paper.

Run with:  python examples/diagrams_gallery.py [--dot]
"""

import sys

from repro.dependencies import diagram_of, render_ascii, render_dot
from repro.reduction import bridge_instance, encode
from repro.semigroups.presentation import Equation
from repro.semigroups.words import show
from repro.workloads.garment import figure1_dependency
from repro.workloads.instances import positive_instance


def main(emit_dot: bool = False) -> None:
    # ------------------------------------------------------------- Fig 1
    fig1 = figure1_dependency()
    print(render_ascii(diagram_of(fig1), "Figure 1: the garment dependency"))
    print()

    # ------------------------------------------------------------- Fig 2
    encoding = encode(positive_instance())
    word = ("A0", "A0", "0")
    instance, bridge = bridge_instance(encoding.reduction_schema, word)
    print(f"Figure 2: the bridge for {show(word)}")
    print("=" * 34)
    print(
        f"{len(bridge.bottom)} bottom tuples (E-equivalent), "
        f"{len(bridge.apexes)} apexes (E'-equivalent), "
        f"one triangle per letter; {bridge.tuple_count} tuples total"
    )
    print(instance.pretty(limit=10))
    print()

    # ------------------------------------------------------------- Fig 3
    equation = Equation.make(["A0", "A0"], ["0"])
    d1, d2, d3, d4 = encoding.by_equation[equation]
    print(f"Figure 3: the dependencies for r: {equation}")
    print()
    for dependency in (d1, d2, d3, d4, encoding.d0):
        print(render_ascii(diagram_of(dependency), dependency.name))
        print()
        if emit_dot:
            print(render_dot(diagram_of(dependency), dependency.name))
            print()


if __name__ == "__main__":
    main(emit_dot="--dot" in sys.argv[1:])

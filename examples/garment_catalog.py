"""The paper's garment-supply scenario, end to end.

Reproduces the introduction's running example: the SUPPLIER/STYLE/SIZE
catalogue, the Figure 1 template dependency, and the example EID used to
compare TDs with the Chandra-Lewis-Makowsky class. Shows model checking,
chase-based repair (completing a catalogue so the dependency holds), and
why an EID is strictly stronger than the conjunction-free split.

Run with:  python examples/garment_catalog.py
"""

from repro import ChaseStatus, chase
from repro.chase.modelcheck import satisfies_all
from repro.dependencies import diagram_of, render_ascii
from repro.workloads.garment import (
    figure1_dependency,
    garment_database,
    garment_eid,
    garment_schema,
)


def main() -> None:
    catalogue = garment_database()
    print("the catalogue:")
    print(catalogue.pretty())
    print()

    fig1 = figure1_dependency()
    print("Figure 1 dependency:", fig1)
    print(render_ascii(diagram_of(fig1), "its diagram (paper, Figure 1)"))
    print()

    violation = fig1.find_violation(catalogue)
    print("does the catalogue satisfy it?", violation is None)
    if violation is not None:
        pretty = {var.name: str(val) for var, val in violation.items()}
        print("  violated at:", pretty)

    # The chase *repairs* the catalogue: it adds the missing (supplier,
    # style, size) combinations -- with anonymous suppliers (labelled
    # nulls) where the dependency only asserts that *some* supplier exists.
    result = chase(catalogue, [fig1])
    assert result.status is ChaseStatus.TERMINATED
    print()
    print(
        f"chase-repaired catalogue: {len(catalogue)} -> "
        f"{len(result.instance)} rows in {result.step_count} steps"
    )
    assert satisfies_all(result.instance, [fig1])
    print("repaired catalogue satisfies the dependency: True")
    print()

    # The EID comparison ("EIDs are more general than TDs"): its
    # conclusion conjunction demands ONE witness supplier covering both
    # sizes; splitting it into two TDs merely demands two possibly
    # different suppliers.
    eid = garment_eid()
    print("example EID:", eid)
    split = eid.split()
    print("split into TDs:")
    for td in split:
        print("  ", td)
    repaired_split = chase(catalogue, split).instance
    print(
        "catalogue chased with the split TDs satisfies the EID itself:",
        eid.holds_in(repaired_split),
    )
    repaired_eid = chase(catalogue, [eid]).instance
    print(
        "catalogue chased with the EID satisfies the EID:",
        eid.holds_in(repaired_eid),
    )


if __name__ == "__main__":
    main()

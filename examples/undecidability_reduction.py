"""The Gurevich-Lewis reduction, end to end, in both directions.

This is the paper's Main Theorem made executable:

* a *positive* word-problem instance (``A0 = 0`` forced) is encoded into
  ``(D, D0)``; the derivation is replayed as a machine-verified chase
  proof that ``D |= D0``, and the generic chase engine re-proves it
  independently;
* a *negative* instance (a finite cancellation counter-semigroup exists)
  yields a finite database satisfying all of ``D`` but violating ``D0``;
* a *gap* instance (valid in neither of the Main Lemma's inseparable
  sets) shows the honest UNKNOWN that undecidability forces.

Run with:  python examples/undecidability_reduction.py
"""

from repro.reduction import classify_instance, encode, prove_direction_a, prove_direction_b
from repro.reduction.bridge import bridge_instance
from repro.semigroups.words import show
from repro.workloads.instances import gap_instance, negative_instance, positive_instance


def main() -> None:
    positive = positive_instance()
    print("positive instance (phi valid):")
    print(positive.describe())
    print()

    encoding = encode(positive)
    print("encoding:", encoding.describe())
    print()

    # Figure 2: the bridge for a word.
    word = ("A0", "A0", "0")
    __, bridge = bridge_instance(encoding.reduction_schema, word)
    print(
        f"bridge for {show(word)} (Figure 2): "
        f"{len(bridge.bottom)} bottom + {len(bridge.apexes)} apex tuples "
        f"= {bridge.tuple_count} (= 2k+1)"
    )
    print()

    # Direction (A): derivation -> verified chase proof; generic re-proof.
    report_a = prove_direction_a(positive, cross_check=True)
    print("derivation found:", report_a.derivation.describe())
    print(report_a.describe())
    print()

    # Direction (B): finite counter-semigroup -> finite database
    # satisfying D but violating D0.
    negative = negative_instance()
    report_b = prove_direction_b(negative)
    print("negative instance (zero equations only):")
    print(report_b.describe())
    semigroup = report_b.counter_model.semigroup
    print("the counter-semigroup's Cayley table:")
    print(semigroup.pretty())
    print()

    # The database itself (the paper's P u Q construction).
    database = report_b.report.database
    print("the counterexample database (one row per element of P u Q):")
    print(database.instance.pretty())
    print()

    # The gap: a bounded classifier must sometimes answer UNKNOWN.
    print("classification of the three canonical instances:")
    for name, presentation in [
        ("positive", positive),
        ("negative", negative),
        ("gap     ", gap_instance()),
    ]:
        outcome = classify_instance(presentation)
        print(f"  {name}: {outcome.instance_class.value}")


if __name__ == "__main__":
    main()

"""Quickstart: template dependencies, the chase, and three-valued inference.

Run with:  python examples/quickstart.py
"""

from repro import Budget, InferenceStatus, infer, parse_td
from repro.dependencies import diagram_of, render_ascii

def main() -> None:
    # A template dependency is written the way the paper writes it: a
    # conjunction of antecedent atoms implying one conclusion atom.
    # Conclusion variables absent from the antecedents are existential.
    transitivity = parse_td("R(x, y) & R(y, z) -> R(x, z)")
    three_step = parse_td("R(x, y) & R(y, z) & R(z, w) -> R(x, w)")
    print("dependency:", transitivity)
    print("  full:", transitivity.is_full(), "| typed:", transitivity.is_typed())
    print()

    # The inference problem: does a set D imply a dependency d?
    # For full TDs the chase terminates and decides the question.
    report = infer([transitivity], three_step)
    print(f"transitivity |= 3-step transitivity?  {report.describe()}")
    assert report.status is InferenceStatus.PROVED

    # A non-implication yields a concrete counterexample database.
    symmetric = parse_td("R(x, y) -> R(y, x)")
    report = infer([transitivity], symmetric)
    print(f"transitivity |= symmetry?              {report.describe()}")
    assert report.status is InferenceStatus.DISPROVED
    print("counterexample database:")
    print(report.finite_counterexample.pretty())
    print()

    # Embedded TDs can make the chase diverge; the budget keeps the
    # answer honest (UNKNOWN) unless finite-model search refutes.
    successor = parse_td("R(x, y) -> R(y, z_star)")
    predecessor = parse_td("R(x, y) -> R(z_star, x)")
    report = infer([successor], predecessor, budget=Budget.small())
    print(f"successor |= predecessor?              {report.describe()}")
    assert report.status is InferenceStatus.DISPROVED  # found a finite model

    # Diagrams (the paper's Figure-1 notation) exist for *typed*
    # dependencies -- each variable must live in one column, so edge
    # labels are attributes. Transitivity is untyped (y crosses columns);
    # the paper's own Figure 1 dependency is typed:
    print()
    fig1 = parse_td("R(a, b, c) & R(a, b', c') -> R(a*, b, c')")
    print(render_ascii(diagram_of(fig1), "the paper's Figure 1 dependency"))


if __name__ == "__main__":
    main()

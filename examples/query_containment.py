"""Conjunctive queries and the homomorphism theorem.

Template dependencies and conjunctive-query containment are the same
mathematics viewed from two sides — both reduce to homomorphism search,
and the chase generalizes the Chandra-Merlin containment test. This
example exercises the query side of the substrate: evaluation,
containment, equivalence and minimization.

Run with:  python examples/query_containment.py
"""

from repro.dependencies.template import Variable
from repro.relational import ConjunctiveQuery, Const, Instance, Schema


def main() -> None:
    schema = Schema(["FROM", "TO"])
    x, y, z, u, v = (Variable(name) for name in "x y z u v".split())

    edges = Instance(
        schema,
        [
            (Const("a"), Const("b")),
            (Const("b"), Const("c")),
            (Const("c"), Const("a")),
        ],
    )

    # Evaluation: all two-step connections in a 3-cycle.
    two_step = ConjunctiveQuery(schema, [x, z], [(x, y), (y, z)])
    print("query:", two_step)
    print("answers on the 3-cycle:")
    for answer in sorted(two_step.answers(edges), key=repr):
        print("  ", tuple(str(value) for value in answer))
    print()

    # Containment (Chandra-Merlin): more joins, fewer answers.
    edge = ConjunctiveQuery(schema, [x, y], [(x, y)])
    constrained = ConjunctiveQuery(schema, [x, y], [(x, y), (y, z)])
    print(f"{constrained}  contained in  {edge}:",
          constrained.is_contained_in(edge))
    print(f"{edge}  contained in  {constrained}:",
          edge.is_contained_in(constrained))
    print("(on the cycle every node has a successor, so both answer sets")
    print(" coincide there -- containment is about ALL databases)")
    print()

    # Minimization: redundant joins fold away (the query core).
    redundant = ConjunctiveQuery(
        schema, [x, z], [(x, y), (y, z), (x, u), (v, z)]
    )
    minimal = redundant.minimized()
    print("redundant:", redundant)
    print("minimized:", minimal)
    assert minimal.is_equivalent_to(redundant)
    assert len(minimal.body) == 2
    print("equivalent:", minimal.is_equivalent_to(redundant))


if __name__ == "__main__":
    main()
